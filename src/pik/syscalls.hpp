// Linux-emulating system call interface for PIK (paper §4.3).
//
// "Syscall stubs were added for each Linux syscall type so we can see
// all activity, and respond, by default, with an error.  The most
// important system calls (i.e. those used by the C runtime and libomp)
// were then implemented iteratively."
//
// The table starts with every call answering -ENOSYS (and counting);
// PikStack then installs real handlers for the set the C runtime and
// the OpenMP runtime need.  Calls happen at the same privilege level,
// in the same address space, on the caller's stack (§4.3) -- which is
// why invoke() charges the cheap PIK crossing, not a Linux one.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "osal/osal.hpp"

namespace kop::pik {

/// The subset of x86-64 Linux syscall numbers PIK traffic uses.
enum class Sys : int {
  kRead = 0,
  kWrite = 1,
  kClose = 3,
  kMmap = 9,
  kMprotect = 10,
  kMunmap = 11,
  kBrk = 12,
  kRtSigprocmask = 14,
  kSchedYield = 24,
  kNanosleep = 35,
  kGetpid = 39,
  kClone = 56,
  kExit = 60,
  kArchPrctl = 158,
  kGettid = 186,
  kFutex = 202,
  kSchedGetaffinity = 204,
  kSetTidAddress = 218,
  kClockGettime = 228,
  kExitGroup = 231,
  kOpenat = 257,
  kGetrandom = 318,
};

inline constexpr long kEnosys = -38;
inline constexpr long kEbadf = -9;
inline constexpr long kEnoent = -2;
inline constexpr long kEinval = -22;

struct SyscallArgs {
  std::array<std::uint64_t, 6> arg{};
  /// For calls that carry a path (openat) or buffer (write), the
  /// simulation passes the payload out of band.
  std::string path;
  std::string data;
};

struct SyscallResult {
  long rv = 0;
  std::string data;  // read() payloads
};

class SyscallTable {
 public:
  using Handler = std::function<SyscallResult(const SyscallArgs&)>;

  /// `os` is charged one PIK syscall crossing per invoke.
  explicit SyscallTable(osal::Os& os);

  /// Install a real handler (replacing the -ENOSYS stub).
  void implement(Sys nr, Handler handler);

  /// Dispatch.  Unknown/unimplemented numbers return -ENOSYS and are
  /// recorded, mirroring the paper's stub-first bring-up.
  SyscallResult invoke(int nr, const SyscallArgs& args = {});
  SyscallResult invoke(Sys nr, const SyscallArgs& args = {}) {
    return invoke(static_cast<int>(nr), args);
  }

  std::uint64_t calls(Sys nr) const;
  std::uint64_t total_calls() const { return total_calls_; }
  /// Numbers that were invoked but only had stubs (bring-up telemetry).
  std::vector<int> unimplemented_seen() const;
  bool is_implemented(Sys nr) const;

 private:
  osal::Os* os_;
  std::map<int, Handler> handlers_;
  std::map<int, std::uint64_t> counts_;
  std::map<int, std::uint64_t> enosys_counts_;
  std::uint64_t total_calls_ = 0;
};

}  // namespace kop::pik
