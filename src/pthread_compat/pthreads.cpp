#include "pthread_compat/pthreads.hpp"

#include <stdexcept>

namespace kop::pthread_compat {

PthreadMutex::PthreadMutex(Pthreads& api, sim::Time spin_ns)
    : api_(&api), impl_(api.os(), spin_ns) {}

void PthreadMutex::lock() {
  api_->charge_op();
  impl_.lock();
}

bool PthreadMutex::try_lock() {
  api_->charge_op();
  return impl_.try_lock();
}

void PthreadMutex::unlock() {
  api_->charge_op();
  impl_.unlock();
}

PthreadCond::PthreadCond(Pthreads& api, sim::Time spin_ns)
    : api_(&api), impl_(api.os(), spin_ns) {}

void PthreadCond::wait(PthreadMutex& m) {
  api_->charge_op();
  impl_.wait(m.raw());
}

bool PthreadCond::timedwait(PthreadMutex& m, sim::Time deadline) {
  api_->charge_op();
  return impl_.wait_until(m.raw(), deadline);
}

void PthreadCond::signal() {
  api_->charge_op();
  impl_.signal();
}

void PthreadCond::broadcast() {
  api_->charge_op();
  impl_.broadcast();
}

PthreadBarrier::PthreadBarrier(Pthreads& api, int parties, sim::Time spin_ns)
    : api_(&api), impl_(api.os(), parties, spin_ns) {}

void PthreadBarrier::wait() {
  api_->charge_op();
  impl_.arrive_and_wait();
}

Pthreads::Pthreads(osal::Os& os, Tuning tuning)
    : os_(&os), tuning_(std::move(tuning)) {}

void Pthreads::charge_op() {
  if (tuning_.op_overhead_ns > 0 && os_->engine().current() != nullptr)
    os_->engine().sleep_for(tuning_.op_overhead_ns);
}

Pthread* Pthreads::create(const PthreadAttr* attr, StartFn start, void* arg) {
  charge_op();
  if (tuning_.on_thread_create) tuning_.on_thread_create();
  auto handle = std::make_unique<Pthread>();
  Pthread* raw = handle.get();
  threads_.push_back(std::move(handle));
  ++threads_created_;
  const int cpu = attr != nullptr ? attr->bound_cpu : -1;
  raw->os_thread_ = os_->spawn_thread(
      "pthread-" + std::to_string(threads_created_),
      [raw, start = std::move(start), arg]() { raw->retval_ = start(arg); },
      cpu);
  by_os_thread_[raw->os_thread_] = raw;
  return raw;
}

void* Pthreads::join(Pthread* t) {
  charge_op();
  os_->join_thread(t->os_thread_);
  return t->retval_;
}

Pthread* Pthreads::self() {
  osal::Thread* cur = os_->current_thread();
  if (cur == nullptr) return &main_thread_;
  auto it = by_os_thread_.find(cur);
  // Threads not created through this API (e.g., the program's initial
  // thread running on a raw OS thread) map to the main handle.
  return it == by_os_thread_.end() ? &main_thread_ : it->second;
}

void Pthreads::yield() {
  charge_op();
  os_->yield();
}

std::unique_ptr<PthreadMutex> Pthreads::make_mutex() {
  return std::make_unique<PthreadMutex>(*this, tuning_.mutex_spin_ns);
}

std::unique_ptr<PthreadCond> Pthreads::make_cond() {
  return std::make_unique<PthreadCond>(*this, tuning_.cond_spin_ns);
}

std::unique_ptr<PthreadBarrier> Pthreads::make_barrier(int parties) {
  return std::make_unique<PthreadBarrier>(*this, parties,
                                          tuning_.barrier_spin_ns);
}

int Pthreads::key_create() { return next_key_++; }

void Pthreads::set_specific(int key, void* value) {
  self()->specifics[key] = value;
}

void* Pthreads::get_specific(int key) {
  auto& sp = self()->specifics;
  auto it = sp.find(key);
  return it == sp.end() ? nullptr : it->second;
}

Pthreads::Tuning linux_glibc_tuning() {
  Pthreads::Tuning t;
  t.flavor = "linux-glibc";
  t.op_overhead_ns = 25;  // PLT + glibc wrapper
  t.mutex_spin_ns = 0;    // default (non-adaptive) mutexes don't spin
  t.cond_spin_ns = 0;
  t.barrier_spin_ns = 0;
  return t;
}

Pthreads::Tuning nautilus_pte_tuning() {
  Pthreads::Tuning t;
  t.flavor = "nautilus-pte";
  // The PTE port "trades platform-dependent optimization for
  // portability" (§3.3): every call descends through the generic
  // library plus the OS abstraction layer we supplied.
  t.op_overhead_ns = 420;
  t.mutex_spin_ns = 2 * sim::kMicrosecond;
  t.cond_spin_ns = 2 * sim::kMicrosecond;
  t.barrier_spin_ns = 2 * sim::kMicrosecond;
  return t;
}

Pthreads::Tuning nautilus_native_tuning() {
  Pthreads::Tuning t;
  t.flavor = "nautilus-native";
  // Customized layer (Fig. 2b): pthread objects are Nautilus objects.
  t.op_overhead_ns = 60;
  // Kernel threads own their CPUs; spinning is cheap and the wake path
  // should stay on the fast (shared-memory) path.
  t.mutex_spin_ns = 20 * sim::kMicrosecond;
  t.cond_spin_ns = 20 * sim::kMicrosecond;
  t.barrier_spin_ns = 20 * sim::kMicrosecond;
  return t;
}

}  // namespace kop::pthread_compat
