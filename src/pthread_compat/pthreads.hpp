// The pthreads interface libomp is written against, with the three
// implementations the paper discusses:
//
//  * LinuxPthreads  -- glibc-style pthreads over the Linux model
//                      (the user-level baseline, and what PIK reuses
//                      unmodified inside the kernel).
//  * PtePthreads    -- the simple port of the embedded PTE library to
//                      Nautilus (Fig. 2a): portable layering, an OS
//                      abstraction layer underneath, and measurable
//                      per-operation indirection overhead.
//  * NativePthreads -- the customized implementation (Fig. 2b) that
//                      maps pthread objects directly onto Nautilus
//                      primitives, "aware of the OpenMP runtime and
//                      geared to it".
//
// All three share one engine-backed implementation; they differ in the
// Os they sit on and the per-op layering overhead they pay, which makes
// the Fig. 2a-vs-2b design choice an ablation we can run (see
// bench/abl_pthread_layers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "osal/osal.hpp"
#include "osal/sync.hpp"

namespace kop::pthread_compat {

struct PthreadAttr {
  int bound_cpu = -1;          // CPU affinity (-1: OS placement)
  std::size_t stack_bytes = 0; // 0: default
};

class Pthreads;

/// Opaque thread handle (pthread_t).
class Pthread {
 public:
  void* retval() const { return retval_; }
  osal::Thread* os_thread() const { return os_thread_; }

 private:
  friend class Pthreads;
  osal::Thread* os_thread_ = nullptr;
  void* retval_ = nullptr;
  std::unordered_map<int, void*> specifics;  // pthread_key values
};

class PthreadMutex {
 public:
  PthreadMutex(Pthreads& api, sim::Time spin_ns);
  void lock();
  bool try_lock();
  void unlock();
  osal::Mutex& raw() { return impl_; }

 private:
  Pthreads* api_;
  osal::Mutex impl_;
};

class PthreadCond {
 public:
  PthreadCond(Pthreads& api, sim::Time spin_ns);
  void wait(PthreadMutex& m);
  /// False on timeout (ETIMEDOUT).
  bool timedwait(PthreadMutex& m, sim::Time deadline);
  void signal();
  void broadcast();

 private:
  Pthreads* api_;
  osal::CondVar impl_;
};

class PthreadBarrier {
 public:
  PthreadBarrier(Pthreads& api, int parties, sim::Time spin_ns);
  void wait();

 private:
  Pthreads* api_;
  osal::Barrier impl_;
};

/// The pthreads "library".  One instance per assembled stack.
class Pthreads {
 public:
  struct Tuning {
    std::string flavor;          // "linux-glibc", "nautilus-pte", ...
    /// Per-call indirection overhead (the PTE port's platform layers).
    sim::Time op_overhead_ns = 0;
    /// Spin window waiters use before sleeping.
    sim::Time mutex_spin_ns = 0;
    sim::Time cond_spin_ns = 0;
    sim::Time barrier_spin_ns = 0;
    /// Invoked on every pthread_create (PIK wires the clone() syscall
    /// emulation through this so syscall accounting sees thread
    /// creation traffic).
    std::function<void()> on_thread_create;
  };

  Pthreads(osal::Os& os, Tuning tuning);

  const Tuning& tuning() const { return tuning_; }
  osal::Os& os() { return *os_; }

  // --- pthread_create / join / self / yield ---
  using StartFn = std::function<void*(void*)>;
  Pthread* create(const PthreadAttr* attr, StartFn start, void* arg);
  void* join(Pthread* t);
  Pthread* self();
  void yield();

  // --- object factories ---
  std::unique_ptr<PthreadMutex> make_mutex();
  std::unique_ptr<PthreadCond> make_cond();
  std::unique_ptr<PthreadBarrier> make_barrier(int parties);

  // --- pthread_key_create / get/setspecific (hwtls stand-in) ---
  int key_create();
  void set_specific(int key, void* value);
  void* get_specific(int key);

  /// Charged at the top of every API call (the Fig. 2a layering cost).
  void charge_op();

  std::uint64_t threads_created() const { return threads_created_; }

 private:
  osal::Os* os_;
  Tuning tuning_;
  std::vector<std::unique_ptr<Pthread>> threads_;
  std::unordered_map<const osal::Thread*, Pthread*> by_os_thread_;
  Pthread main_thread_;
  int next_key_ = 1;
  std::uint64_t threads_created_ = 0;
};

/// Factory helpers for the three paper configurations.
Pthreads::Tuning linux_glibc_tuning();
Pthreads::Tuning nautilus_pte_tuning();
Pthreads::Tuning nautilus_native_tuning();

}  // namespace kop::pthread_compat
