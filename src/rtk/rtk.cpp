#include "rtk/rtk.hpp"

#include "komp/tuning.hpp"
#include "nautilus/loader.hpp"

namespace kop::rtk {

RtkStack::RtkStack(RtkOptions options) : options_(std::move(options)) {
  // The boot-image layout check happens before anything "runs", just
  // like the link step that produces the bootable kernel.
  nautilus::BootImage image;
  image.kernel_bytes = options_.kernel_image_bytes;
  image.app_static_bytes = options_.app_static_bytes;
  nautilus::BootLayout::check(options_.machine, image);

  engine_ = std::make_unique<sim::Engine>(options_.seed, options_.sched);
  if (options_.racecheck) engine_->enable_racecheck();
  kernel_ = std::make_unique<nautilus::NautilusKernel>(
      *engine_, options_.machine, options_.kernel_config);
  pthreads_ = std::make_unique<pthread_compat::Pthreads>(
      *kernel_, options_.use_pte_pthreads
                    ? pthread_compat::nautilus_pte_tuning()
                    : pthread_compat::nautilus_native_tuning());
}

RtkStack::~RtkStack() = default;

void RtkStack::register_app(const std::string& name, AppMain app) {
  apps_[name] = std::move(app);
  kernel_->register_shell_command(name, [this, name](
                                            const std::vector<std::string>&) {
    // The shell command runs on a kernel thread; the OpenMP runtime
    // lives exactly as long as the application (it is part of the
    // kernel image but its thread pool belongs to the app run).
    komp::RuntimeTuning tuning = komp::rtk_libomp_tuning();
    if (options_.use_pte_pthreads) {
      // The ported libomp suspends and wakes through the pthread
      // layer; the PTE port's per-call indirection (Fig. 2a) therefore
      // lands on every runtime primitive.
      const sim::Time extra =
          pthread_compat::nautilus_pte_tuning().op_overhead_ns -
          pthread_compat::nautilus_native_tuning().op_overhead_ns;
      tuning.barrier_step_extra_ns += extra;
      tuning.fork_per_thread_ns += extra;
      tuning.dispatch_next_ns += extra / 2;
      tuning.single_ns += extra;
      tuning.task_spawn_ns += extra;
      tuning.task_exec_ns += extra / 2;
      tuning.reduction_leaf_ns += extra;
    }
    komp::Runtime runtime(*pthreads_, tuning);
    return apps_.at(name)(runtime);
  });
}

int RtkStack::run_shell(const std::string& name) {
  int exit_code = -1;
  kernel_->spawn_thread(
      "shell:" + name,
      [this, name, &exit_code]() {
        exit_code = kernel_->run_shell_command(name);
      },
      /*cpu=*/0);
  engine_->run();
  return exit_code;
}

int RtkStack::run_app(AppMain app) {
  register_app("app", std::move(app));
  return run_shell("app");
}

}  // namespace kop::rtk
