// Runtime-in-kernel (RTK, paper §3): the OpenMP runtime and the
// application are linked *into* the Nautilus boot image.  main()
// becomes a shell command; libomp runs over the pthread compatibility
// layer; there are no syscalls -- every service is a function call
// into the kernel.
//
// RtkStack assembles that world:
//   engine -> NautilusKernel -> Pthreads (PTE port or customized) ->
//   komp::Runtime (rtk tuning) -> application shell command
// and reproduces the §3.1/§6.2 build-time constraint: the boot image
// (kernel + statically linked application data) must not overlap MMIO,
// which is what forces class-B inputs or dynamic allocation for
// benchmarks with gigabyte-size globals.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::rtk {

struct RtkOptions {
  hw::MachineConfig machine;
  nautilus::NautilusConfig kernel_config;
  /// Fig. 2a (PTE port) vs Fig. 2b (customized) pthreads.
  bool use_pte_pthreads = false;
  std::uint64_t seed = 42;
  /// Engine scheduling policy (FIFO / seeded-random / PCT).
  sim::SchedConfig sched;
  /// Attach the vector-clock race detector.
  bool racecheck = false;
  /// Size of the Nautilus kernel core in the boot image (compiled
  /// kernel + ported libomp + pthread layer).
  std::uint64_t kernel_image_bytes = 48ULL << 20;
  /// Link-time static data of the application (the NAS globals).
  /// Checked against the MMIO hole at "boot".
  std::uint64_t app_static_bytes = 0;
};

class RtkStack {
 public:
  /// "Boots" the kernel: validates the boot-image layout (throws
  /// nautilus::BootOverlapError on overlap) and brings up the kernel.
  explicit RtkStack(RtkOptions options);
  ~RtkStack();

  sim::Engine& engine() { return *engine_; }
  nautilus::NautilusKernel& kernel() { return *kernel_; }
  pthread_compat::Pthreads& pthreads() { return *pthreads_; }
  const RtkOptions& options() const { return options_; }

  /// The application entry point, converted to a shell command (§3.1).
  /// The komp runtime is brought up on the command's kernel thread and
  /// torn down when it returns.
  using AppMain = std::function<int(komp::Runtime&)>;
  void register_app(const std::string& name, AppMain app);

  /// Run a registered app to completion (drains the engine) and return
  /// its exit code.
  int run_shell(const std::string& name);

  /// Convenience: register + run an anonymous app.
  int run_app(AppMain app);

 private:
  RtkOptions options_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<nautilus::NautilusKernel> kernel_;
  std::unique_ptr<pthread_compat::Pthreads> pthreads_;
  std::map<std::string, AppMain> apps_;
};

}  // namespace kop::rtk
