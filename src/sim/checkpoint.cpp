#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "sim/fiber.hpp"

#if defined(__SANITIZE_THREAD__)
#define KOP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KOP_TSAN_BUILD 1
#endif
#endif

namespace kop::sim {

namespace {

// True when [lo, lo+len) is covered by a PROT_NONE mapping according to
// /proc/self/maps.  Uses raw read()/manual parsing: this runs in a
// freshly forked child of a multi-threaded process, where only
// async-signal-safe calls are trustworthy (malloc/stdio locks may be
// held by threads that did not survive the fork).
bool range_is_prot_none(std::uintptr_t lo, std::size_t len) {
  const int fd = ::open("/proc/self/maps", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  char buf[4096];
  char line[256];
  std::size_t line_len = 0;
  bool found = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n && !found; ++i) {
      const char c = buf[i];
      if (c != '\n') {
        if (line_len + 1 < sizeof(line)) line[line_len++] = c;
        continue;
      }
      line[line_len] = '\0';
      // "start-end perms ..." in hex; perms is 4 chars like "---p".
      std::uintptr_t start = 0, end = 0;
      char perms[8] = {0};
      if (std::sscanf(line, "%" SCNxPTR "-%" SCNxPTR " %7s", &start, &end,
                      perms) == 3 &&
          start <= lo && lo + len <= end) {
        found = perms[0] == '-' && perms[1] == '-' && perms[2] == '-';
      }
      line_len = 0;
    }
    if (found) break;
  }
  ::close(fd);
  return found;
}

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent went away; nothing useful a child can do
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

bool Checkpoint::supported() {
#ifdef KOP_TSAN_BUILD
  return false;
#else
  return true;
#endif
}

Checkpoint::~Checkpoint() {
  // Defensive reap: a caller that forked but never harvested (e.g. an
  // exception between fork and harvest) must not leak zombies or leave
  // children blocked on a full pipe forever.
  for (Child& c : children_) {
    if (c.harvested) continue;
    if (c.read_fd >= 0) ::close(c.read_fd);
    if (c.pid > 0) {
      int status = 0;
      while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    c.harvested = true;
  }
}

bool Checkpoint::fork_child() {
  if (!supported())
    throw std::logic_error("checkpoint: fork not supported in this build");
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::runtime_error(std::string("checkpoint: pipe: ") +
                             std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error(std::string("checkpoint: fork: ") +
                             std::strerror(errno));
  }
  if (pid > 0) {
    ::close(fds[1]);
    children_.push_back(Child{fds[0], pid, false});
    return false;
  }
  // Child: keep only our own write end; inherited read ends of earlier
  // siblings would otherwise hold their pipes open past the parent.
  ::close(fds[0]);
  for (const Child& c : children_) {
    if (c.read_fd >= 0) ::close(c.read_fd);
  }
  children_.clear();
  child_write_fd_ = fds[1];
  // COW sanity: the fiber we are about to keep running on must still
  // have its PROT_NONE guard page; losing it across the fork would let
  // a stack overflow silently chew into the adjacent slab.
  if (const Fiber* f = Fiber::current()) {
    const auto lo = reinterpret_cast<std::uintptr_t>(f->stack_base());
    if (!range_is_prot_none(lo, f->guard_bytes())) _exit(kGuardLostExit);
  }
  return true;
}

void Checkpoint::child_exit(const std::string& payload, int code) {
  if (child_write_fd_ >= 0) {
    write_all(child_write_fd_, payload.data(), payload.size());
    ::close(child_write_fd_);
  }
  // _exit, not exit: a forked child shares the parent's atexit
  // handlers, open streams and sinks, and must not flush or destroy
  // any of them.
  _exit(code);
}

Checkpoint::Harvest Checkpoint::harvest(std::size_t index) {
  if (index >= children_.size())
    throw std::out_of_range("checkpoint: harvest index out of range");
  Child& c = children_[index];
  if (c.harvested) throw std::logic_error("checkpoint: child already harvested");
  c.harvested = true;

  Harvest h;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(c.read_fd, buf, sizeof(buf));
    if (n > 0) {
      h.payload.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(c.read_fd);
  c.read_fd = -1;

  int status = 0;
  pid_t r;
  while ((r = ::waitpid(c.pid, &status, 0)) < 0 && errno == EINTR) {
  }
  if (r == c.pid && WIFEXITED(status)) h.exit_code = WEXITSTATUS(status);
  c.pid = -1;
  return h;
}

}  // namespace kop::sim
