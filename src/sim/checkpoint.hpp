// COW fork() checkpointing at the warmup/measurement boundary.
//
// A checkpointed sweep runs one warm prefix (boot, page-touch, first
// parallel region) and forks one child per late-binding suffix at the
// Engine::snapshot_point() boundary.  fork()'s copy-on-write semantics
// carry the whole simulation along for free -- fiber ucontext stacks,
// slab arenas, the calendar queue, every heap object -- with no
// serialization step; each child applies its own suffix deltas (cost
// scales, rep counts), finishes the measurement phase, and pipes its
// encoded result back to the parent.
//
// Child hygiene rules (the reason this is a facade and not raw fork):
//   * children report through their pipe and leave via child_exit()'s
//     _exit(), so parent-owned sinks, caches and streams can never be
//     double-flushed from a child;
//   * a child never touches the ResultCache, claim files, or
//     coordinator leases -- the parent owns all externally visible
//     side effects and stores harvested results itself;
//   * the child asserts its current fiber's guard page survived the
//     fork before resuming simulation (a COW remap that dropped
//     PROT_NONE would turn stack overflows into silent corruption).
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>
#include <vector>

namespace kop::sim {

class Checkpoint {
 public:
  Checkpoint() = default;
  ~Checkpoint();

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// Whether fork-based checkpointing works in this build.  False under
  /// ThreadSanitizer: TSan's runtime does not survive fork() from a
  /// threaded parent, so checkpointed paths fall back to cold runs.
  static bool supported();

  /// Fork one child.  In the parent: records the child's pid and result
  /// pipe and returns false.  In the child: closes inherited pipe ends,
  /// verifies the current fiber's guard page is still PROT_NONE
  /// (_exit(kGuardLostExit) if not), and returns true.  A child must
  /// finish its work and leave via child_exit(); returning into the
  /// parent's control flow above the fork is a bug.
  bool fork_child();

  /// [child only] Write `payload` to the result pipe, then _exit(code)
  /// -- skipping atexit handlers, stream flushes and destructors.
  [[noreturn]] void child_exit(const std::string& payload, int code = 0);

  /// Exit code a child uses when the post-fork guard-page check fails.
  static constexpr int kGuardLostExit = 71;

  struct Harvest {
    std::string payload;
    /// Child's exit code; -1 when it died abnormally (signal).
    int exit_code = -1;
    bool ok() const { return exit_code == 0; }
  };

  /// [parent only] Read child `index`'s pipe to EOF and reap it.  Call
  /// at most once per forked child; blocks until that child exits (or
  /// closes its pipe).
  Harvest harvest(std::size_t index);

  /// Number of children forked so far (harvested or not).
  std::size_t children() const { return children_.size(); }

 private:
  struct Child {
    int read_fd = -1;
    pid_t pid = -1;
    bool harvested = false;
  };

  std::vector<Child> children_;
  int child_write_fd_ = -1;  // valid only inside a forked child
};

}  // namespace kop::sim
