#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/racecheck.hpp"

namespace kop::sim {

namespace {

// KOP_FIBER_STACK_KB overrides the per-fiber stack size for every
// engine in the process (deep workloads, or trimming COW footprint for
// checkpointed sweeps).  Unparseable or absurd values fall back to the
// compiled-in default rather than failing the run.
std::size_t env_fiber_stack_bytes() {
  const char* env = std::getenv("KOP_FIBER_STACK_KB");
  if (env == nullptr || *env == '\0') return Fiber::kDefaultStackBytes;
  char* end = nullptr;
  const unsigned long long kb = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return Fiber::kDefaultStackBytes;
  if (kb < 16 || kb > 64 * 1024) return Fiber::kDefaultStackBytes;
  return static_cast<std::size_t>(kb) * 1024;
}

}  // namespace

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kRandom: return "random";
    case SchedPolicy::kPct: return "pct";
  }
  return "?";
}

SimThread::SimThread(Engine& eng, std::uint64_t id, std::string name,
                     std::function<void()> body, std::size_t stack_bytes)
    : engine_(eng), id_(id), name_(std::move(name)) {
  fiber_ = std::make_unique<Fiber>(std::move(body), stack_bytes);
}

Engine::Engine(std::uint64_t rng_seed, SchedConfig sched)
    : rng_(rng_seed),
      sched_(sched),
      fiber_stack_bytes_(env_fiber_stack_bytes()),
      // Offset the seed so sched seed 0 and rng seed 0 decorrelate.
      sched_rng_(sched.seed ^ 0xc2b2ae3d27d4eb4fULL),
      queue_(sched.policy != SchedPolicy::kFifo) {}

Engine::~Engine() = default;

RaceChecker& Engine::enable_racecheck() {
  if (!racecheck_) racecheck_ = std::make_unique<RaceChecker>(*this);
  return *racecheck_;
}

void Engine::set_fiber_stack_bytes(std::size_t bytes) {
  fiber_stack_bytes_ = bytes > 0 ? bytes : env_fiber_stack_bytes();
}

void Engine::snapshot_point() {
  if (snapshot_fired_) return;
  snapshot_fired_ = true;
  if (snapshot_hook_) snapshot_hook_();
}

SimThread* Engine::spawn(std::string name, std::function<void()> body,
                         std::size_t stack_bytes) {
  if (stack_bytes == 0) stack_bytes = fiber_stack_bytes_;
  auto thread = std::unique_ptr<SimThread>(new SimThread(
      *this, next_thread_id_++, std::move(name), std::move(body), stack_bytes));
  SimThread* raw = thread.get();
  if (sched_.policy == SchedPolicy::kPct)
    raw->sched_priority_ = sched_rng_.next_u64();
  if (racecheck_)
    racecheck_->on_spawn(raw->id(), raw->name(), current_tid());
  threads_.push_back(std::move(thread));
  ++stats_.threads_spawned;
  return raw;
}

std::uint64_t Engine::sched_key(const SimThread* target) {
  switch (sched_.policy) {
    case SchedPolicy::kFifo:
      return 0;
    case SchedPolicy::kRandom:
      return sched_rng_.next_u64();
    case SchedPolicy::kPct:
      // Higher thread priority -> smaller key -> dispatched first.
      // Callback events draw a fresh key (timers behave like devices
      // with no stable priority).
      return target != nullptr ? ~target->sched_priority_
                               : sched_rng_.next_u64();
  }
  return 0;
}

void Engine::enqueue(Event&& ev) {
  // Race checking costs exactly this one (cold) branch when disabled:
  // ev.hb stays a default-constructed null shared_ptr, untouched.
  if (racecheck_) [[unlikely]]
    ev.hb = racecheck_->release_snapshot(current_tid());
  queue_.push(std::move(ev));
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
}

bool Engine::wake_at(SimThread* t, Time when) {
  if (t == nullptr) throw std::logic_error("engine: wake of null thread");
  if (t->finished()) return false;
  if (when < now_) when = now_;
  Event ev;
  ev.at = when;
  ev.seq = next_seq_++;
  ev.key = sched_key(t);
  ev.thread = t;
  ev.generation = t->wake_generation_;
  enqueue(std::move(ev));
  return true;
}

void Engine::wake_token_at(WakeToken tok, Time when) {
  if (tok.thread == nullptr) return;
  if (when < now_) when = now_;
  Event ev;
  ev.at = when;
  ev.seq = next_seq_++;
  ev.key = sched_key(tok.thread);
  ev.thread = tok.thread;
  ev.generation = tok.generation;
  enqueue(std::move(ev));
}

void Engine::post_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  Event ev;
  ev.at = when;
  ev.seq = next_seq_++;
  ev.key = sched_key(nullptr);
  ev.fn = std::move(fn);
  enqueue(std::move(ev));
}

WakeToken Engine::arm_wake_token() {
  if (current_ == nullptr)
    throw std::logic_error("engine: arm_wake_token outside a sim thread");
  return WakeToken{current_, current_->wake_generation_};
}

void Engine::block() {
  SimThread* self = current_;
  if (self == nullptr) throw std::logic_error("engine: block outside a sim thread");
  self->blocked_ = true;
  Fiber::yield();
  // Resumed by dispatch(); generation was bumped there.
}

void Engine::sleep_for(Time ns) {
  SimThread* self = current_;
  if (self == nullptr) throw std::logic_error("engine: sleep outside a sim thread");
  wake_at(self, now_ + (ns < 0 ? 0 : ns));
  block();
}

void Engine::yield_now() {
  SimThread* self = current_;
  if (self == nullptr) throw std::logic_error("engine: yield outside a sim thread");
  wake_at(self, now_);
  block();
}

void Engine::dispatch(Event& ev) {
  now_ = ev.at;
  // Order digest: fold the dispatch identity so any reordering --
  // queue bug, policy drift, nondeterministic tie-break -- changes the
  // final stats().dispatch_digest.
  std::uint64_t d = stats_.dispatch_digest;
  d = (d ^ static_cast<std::uint64_t>(ev.at)) * 0x100000001b3ULL;
  d = (d ^ (ev.thread != nullptr ? ev.thread->id() : 0)) * 0x100000001b3ULL;
  d = (d ^ ev.seq) * 0x100000001b3ULL;
  stats_.dispatch_digest = d;
  if (ev.fn) {
    if (racecheck_) [[unlikely]]
      racecheck_->on_callback(ev.hb);
    ev.fn();
    return;
  }
  SimThread* t = ev.thread;
  if (t->finished()) return;
  // Stale wake: the thread already left the block() this wake targeted.
  if (ev.generation != t->wake_generation_) {
    ++stats_.stale_wakes;
    return;
  }
  if (!t->blocked_) return;  // duplicate wake for the same generation
  t->blocked_ = false;
  t->wake_generation_++;  // invalidate other pending wakes for that block
  if (racecheck_) [[unlikely]]
    racecheck_->on_resume(t->id(), ev.hb);
  if (sched_.policy == SchedPolicy::kPct) {
    // PCT-style priority change point: occasionally re-draw the
    // resumed thread's priority so a single high-priority thread
    // cannot dominate the whole run.
    if (sched_rng_.bernoulli(1.0 / 32.0))
      t->sched_priority_ = sched_rng_.next_u64();
  }
  SimThread* prev = current_;
  current_ = t;
  t->fiber_->resume();
  current_ = prev;
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    ++stats_.events_dispatched;
    dispatch(ev);
  }
  stats_.queue_allocs = queue_.allocs();
  if (live_thread_count() > 0) report_deadlock();
}

void Engine::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    Event ev = queue_.pop();
    ++stats_.events_dispatched;
    dispatch(ev);
  }
  stats_.queue_allocs = queue_.allocs();
  if (now_ < t) now_ = t;
}

std::size_t Engine::live_thread_count() const {
  std::size_t n = 0;
  for (const auto& t : threads_) {
    if (!t->finished()) ++n;
  }
  return n;
}

void Engine::report_deadlock() const {
  std::ostringstream oss;
  oss << "simulation deadlock at t=" << now_ << "ns";
  if (sched_.policy != SchedPolicy::kFifo) {
    oss << " [sched=" << sched_policy_name(sched_.policy) << " seed="
        << sched_.seed << "]";
  }
  oss << "; blocked threads:";
  for (const auto& t : threads_) {
    if (!t->finished()) oss << " [" << t->id() << ":" << t->name() << "]";
  }
  throw SimDeadlock(oss.str());
}

}  // namespace kop::sim
