// The discrete-event simulation engine.
//
// The engine owns a virtual clock, an event queue ordered by
// (time, key, sequence) -- a two-level calendar queue with a
// same-instant fast path (see sim/event_queue.hpp) -- and a set of
// SimThreads, each backed by a Fiber.
// Higher layers (the OS models) decide *when* a thread runs; the engine
// only provides the mechanics:
//
//   * spawn()            create a simulated thread (initially blocked)
//   * wake() / wake_at() make a blocked thread runnable at a time
//   * block()            called from inside a thread: suspend until woken
//   * sleep_for()        block for a fixed virtual duration
//   * post_at/post_in()  run a plain callback at a time (timers, IRQs)
//
// Wakeups are generation-counted: each block() bumps the thread's
// generation and a wake targets the generation it observed, so a stale
// wake (e.g., a timeout racing a signal) is ignored.  This gives the OS
// layers race-free timed waits without extra bookkeeping.
//
// Determinism: events at equal times fire in posting order *under the
// default FIFO ready-queue policy*, and all randomness flows through
// the engine-owned Rng.  The ready-queue policy is pluggable: a
// SchedConfig selects how ties between events at the same virtual
// instant are broken (FIFO, seeded-random shuffle, or a PCT-style
// priority scheme).  Any (policy, sched seed) pair is itself fully
// deterministic -- the same pair replays the same interleaving
// bit-for-bit -- which is what lets the schedfuzz harness sweep seeds
// and replay failures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace kop::sim {

class Engine;
class RaceChecker;

/// How the engine breaks ties between events at the same virtual time
/// (the "ready queue" of the simulated instant).
enum class SchedPolicy {
  kFifo,    // posting order (the historical, calibrated behavior)
  kRandom,  // seeded-random order among same-time events
  kPct,     // PCT-style: random per-thread priorities, occasionally
            // perturbed; high-priority threads run first
};

const char* sched_policy_name(SchedPolicy p);

/// Selects one deterministic interleaving.  The seed feeds a dedicated
/// scheduling Rng, fully independent of the cost-model Rng, so FIFO
/// runs are bit-identical with or without this feature.
struct SchedConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  std::uint64_t seed = 0;
};

/// A simulated thread: a fiber plus scheduling metadata.  Created via
/// Engine::spawn(); destroyed with the engine.
class SimThread {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool finished() const { return fiber_->finished(); }
  bool blocked() const { return blocked_; }

  /// Opaque slot for the OS layer that owns this thread (e.g., the
  /// nautilus::Thread or linuxmodel::Thread wrapping it).
  void* user_data = nullptr;

 private:
  friend class Engine;
  SimThread(Engine& eng, std::uint64_t id, std::string name,
            std::function<void()> body, std::size_t stack_bytes);

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  std::unique_ptr<Fiber> fiber_;
  bool blocked_ = true;       // threads start blocked until first wake
  std::uint64_t wake_generation_ = 0;
  std::uint64_t sched_priority_ = 0;  // PCT priority (higher runs first)
};

/// Handle used to target a wake at a particular block() instance.
struct WakeToken {
  SimThread* thread = nullptr;
  std::uint64_t generation = 0;
};

class Engine {
 public:
  explicit Engine(std::uint64_t rng_seed = 42, SchedConfig sched = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  const SchedConfig& sched() const { return sched_; }

  /// Create a simulated thread.  The thread starts *blocked*; call
  /// wake() (typically from an OS scheduler) to start it.
  /// `stack_bytes` 0 uses the engine's fiber-stack default (the
  /// KOP_FIBER_STACK_KB environment variable, else Fiber's 256 KiB).
  SimThread* spawn(std::string name, std::function<void()> body,
                   std::size_t stack_bytes = 0);

  /// Per-fiber stack size used when spawn() is called without an
  /// explicit size.  Seeded from KOP_FIBER_STACK_KB at construction.
  std::size_t fiber_stack_bytes() const { return fiber_stack_bytes_; }
  void set_fiber_stack_bytes(std::size_t bytes);

  /// Make `t` runnable now / at `when`.  Returns false (and does
  /// nothing) if the thread has already finished.
  bool wake(SimThread* t) { return wake_at(t, now_); }
  bool wake_at(SimThread* t, Time when);

  /// Wake only if the thread is still in the block() instance the token
  /// was captured for.  Used for timeouts.
  void wake_token_at(WakeToken tok, Time when);

  /// Run a plain callback at / after a time.  Callbacks run on the main
  /// context (not inside any fiber) and may wake threads or post more
  /// events.
  void post_at(Time when, std::function<void()> fn);
  void post_in(Time delta, std::function<void()> fn) { post_at(now_ + delta, std::move(fn)); }

  /// --- Fiber-side API (must be called from a running SimThread) ---

  /// The currently running simulated thread (nullptr on main context).
  SimThread* current() const { return current_; }

  /// Id of the current simulated thread; 0 on the main context.
  std::uint64_t current_tid() const { return current_ ? current_->id() : 0; }

  /// Capture a token for the *next* block() on the current thread.
  /// Pattern: tok = arm_wake_token(); <publish tok>; block();
  WakeToken arm_wake_token();

  /// Suspend the current thread until a matching wake arrives.
  void block();

  /// Suspend for `ns` of virtual time.
  void sleep_for(Time ns);

  /// Yield to any other work scheduled at the current instant (the
  /// thread is immediately rescheduled; useful for modelled spin loops).
  void yield_now();

  /// --- Checkpoint boundary ---

  /// Workloads call snapshot_point() exactly where warmup ends and the
  /// measurement phase begins.  The first call fires the installed hook
  /// synchronously on the calling fiber; later calls are no-ops, so a
  /// suite running several parts marks only its first boundary.  The
  /// hook must not post events or draw from the engine Rngs: the
  /// boundary has to be invisible to the dispatch trajectory (that is
  /// what makes a forked measurement phase byte-identical to a cold
  /// run).  After fork() the child inherits snapshot_fired_ == true, so
  /// the boundary can never re-fire in a checkpoint child.
  void set_snapshot_hook(std::function<void()> hook) {
    snapshot_hook_ = std::move(hook);
  }
  void snapshot_point();
  bool snapshot_fired() const { return snapshot_fired_; }

  /// --- Race detection ---

  /// Attach a happens-before race detector.  Must be called before any
  /// threads are spawned or events posted; all subsequent wakes carry
  /// vector-clock edges and the annotation hooks in sim/racecheck.hpp
  /// become live.  Idempotent.
  RaceChecker& enable_racecheck();
  /// The attached detector, or nullptr when disabled (the default).
  RaceChecker* racecheck() const { return racecheck_.get(); }

  /// --- Run loop ---

  /// Process events until the queue drains.  Throws SimDeadlock if
  /// unfinished threads remain blocked with no pending events.
  void run();

  /// Process events with timestamps <= t (then stops; more run() calls
  /// may continue).  Does not deadlock-check.
  void run_until(Time t);

  std::size_t live_thread_count() const;

  /// Run-loop statistics (engine health / wall-clock budgeting).
  struct Stats {
    std::uint64_t events_dispatched = 0;
    std::uint64_t stale_wakes = 0;      // generation-filtered wakeups
    std::uint64_t threads_spawned = 0;
    std::size_t peak_queue_depth = 0;
    /// Heap allocations made by the event queue after warm-up; a warm
    /// engine should dispatch with this not moving (arena reuse).
    std::uint64_t queue_allocs = 0;
    /// FNV-1a fold of every dispatched event's (at, thread id, seq).
    /// Two runs of the same workload under the same (policy, seed) must
    /// end with identical digests -- the machine-checkable form of the
    /// dispatch-order determinism guarantee (harness/propcheck asserts
    /// it over random experiment points).
    std::uint64_t dispatch_digest = 0xcbf29ce484222325ULL;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class RaceChecker;

  /// Tie-break key for an event being posted now (depends on policy).
  std::uint64_t sched_key(const SimThread* target);

  /// Push with stats upkeep (peak depth is tracked here, on push only:
  /// the depth cannot grow anywhere else).
  void enqueue(Event&& ev);

  void dispatch(Event& ev);
  [[noreturn]] void report_deadlock() const;

  Time now_ = 0;
  Rng rng_;
  SchedConfig sched_;
  std::size_t fiber_stack_bytes_ = 0;
  std::function<void()> snapshot_hook_;
  bool snapshot_fired_ = false;
  Rng sched_rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_thread_id_ = 1;
  EventQueue queue_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  SimThread* current_ = nullptr;
  Stats stats_;
  std::unique_ptr<RaceChecker> racecheck_;
};

/// Thrown by Engine::run() when all events drain but simulated threads
/// remain blocked; the message lists the stuck threads.
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace kop::sim
