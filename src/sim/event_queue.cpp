#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>

namespace kop::sim {

namespace {

inline std::uint64_t epoch_of(Time at) {
  return static_cast<std::uint64_t>(at) /
         static_cast<std::uint64_t>(EventQueue::kBucketWidthNs);
}

// std::*_heap comparator for an Event min-heap on (at, key, seq).
inline bool heap_later(const Event& a, const Event& b) {
  if (a.at != b.at) return a.at > b.at;
  if (a.key != b.key) return a.key > b.key;
  return a.seq > b.seq;
}

// Min-heap on (key, seq) only: the current-instant heap (all equal at).
inline bool cur_later(const Event& a, const Event& b) {
  if (a.key != b.key) return a.key > b.key;
  return a.seq > b.seq;
}

}  // namespace

EventQueue::EventQueue(bool keyed) : keyed_(keyed), buckets_(kBuckets) {}

void EventQueue::push(Event ev) {
  ++size_;
  // Same-instant fast path: a yield/advance(0) repost joins the live
  // instant directly (the ring cannot hold events at cur_time_; see
  // header invariants).
  if (ev.at == cur_time_) {
    grow_push(own_, std::move(ev));
    if (keyed_) std::push_heap(own_.begin(), own_.end(), cur_later);
    return;
  }
  if (epoch_of(ev.at) < base_epoch_ + kBuckets) {
    ring_insert(std::move(ev));
    return;
  }
  grow_push(overflow_, std::move(ev));
  std::push_heap(overflow_.begin(), overflow_.end(), heap_later);
}

void EventQueue::ring_insert(Event ev) {
  const std::size_t idx =
      static_cast<std::size_t>(epoch_of(ev.at)) & (kBuckets - 1);
  Bucket& b = buckets_[idx];
  if (b.slab.capacity() == 0 && !spares_.empty()) {
    // Largest spare first: bucket loads wobble across epoch
    // boundaries, and a too-small spare would regrow.
    std::size_t best = 0;
    for (std::size_t i = 1; i < spares_.size(); ++i) {
      if (spares_[i].slab.capacity() > spares_[best].slab.capacity()) best = i;
    }
    b.slab = std::move(spares_[best].slab);
    b.keys = std::move(spares_[best].keys);
    spares_[best] = std::move(spares_.back());
    spares_.pop_back();
  }
  const Key k{ev.at, ev.key, ev.seq, static_cast<std::uint32_t>(b.slab.size())};
  // Dirty only when this append actually breaks the ascending order;
  // timer-style monotone arrivals then never pay a sort.
  if (!b.dirty && b.keys.size() > b.head) {
    const Key& last = b.keys.back();
    b.dirty = k.at < last.at ||
              (k.at == last.at &&
               (k.key < last.key || (k.key == last.key && k.seq < last.seq)));
  }
  grow_push(b.slab, std::move(ev));
  grow_push(b.keys, k);
  const std::uint64_t bit = 1ull << (idx % 64);
  if ((bitmap_[idx / 64] & bit) == 0) {
    bitmap_[idx / 64] |= bit;
    ++occupied_;
  }
  ++ring_count_;
}

void EventQueue::settle(Bucket& b) {
  if (b.dirty) {
    std::sort(b.keys.begin() + static_cast<std::ptrdiff_t>(b.head),
              b.keys.end(), [](const Key& a, const Key& c) {
                if (a.at != c.at) return a.at < c.at;
                if (a.key != c.key) return a.key < c.key;
                return a.seq < c.seq;
              });
    b.dirty = false;
  }
}

std::size_t EventQueue::scan_from(std::size_t start) const {
  constexpr std::size_t kWords = kBuckets / 64;
  std::size_t wi = start / 64;
  std::uint64_t w = bitmap_[wi] & (~0ull << (start % 64));
  for (std::size_t i = 0;; ++i) {
    if (w != 0)
      return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
    wi = (wi + 1) % kWords;
    w = bitmap_[wi];
    if (i > kWords) return kBuckets;  // unreachable when ring_count_ > 0
  }
}

void EventQueue::migrate_overflow() {
  while (!overflow_.empty() &&
         epoch_of(overflow_.front().at) < base_epoch_ + kBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), heap_later);
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    ring_insert(std::move(ev));
  }
}

void EventQueue::retire_run_bucket() {
  if (run_bucket_ == kNoBucket) return;
  Bucket& pb = buckets_[run_bucket_];
  // Reset only a fully drained bucket; one with fresh same-epoch
  // arrivals keeps accumulating until its epoch passes.
  if (pb.head == pb.keys.size()) {
    pb.slab.clear();
    pb.keys.clear();
    pb.head = 0;
    pb.dirty = false;
    // Keep a few spares on hand for the next cold bucket the clock
    // reaches.  Only for narrow workloads (few occupied buckets, the
    // marching-clock pattern): when many buckets are live at once,
    // capacity is worth more staying in place than circulating through
    // the pool with mismatched sizes.
    if (pb.slab.capacity() != 0 && occupied_ < 64 && spares_.size() < 8) {
      if (spares_.size() == spares_.capacity()) ++allocs_;
      spares_.push_back(Spare{std::move(pb.slab), std::move(pb.keys)});
      pb.slab = {};
      pb.keys = {};
    }
  }
  run_bucket_ = kNoBucket;
  run_pos_ = run_end_ = 0;
}

void EventQueue::advance_instant() {
  retire_run_bucket();
  own_.clear();
  own_head_ = 0;
  if (ring_count_ == 0) {
    // Jump the window straight to the earliest overflow event.
    base_epoch_ = epoch_of(overflow_.front().at);
    migrate_overflow();
  }
  const std::size_t cursor = static_cast<std::size_t>(base_epoch_) % kBuckets;
  const std::size_t idx = scan_from(cursor);
  const std::size_t skip = (idx + kBuckets - cursor) % kBuckets;
  if (skip != 0) {
    base_epoch_ += skip;
    // The window advanced: overflow events may now be inside it.  They
    // all land strictly after `idx`'s epoch, so the choice of bucket
    // stands (see header).
    migrate_overflow();
  }
  Bucket& b = buckets_[idx];
  settle(b);
  cur_time_ = b.keys[b.head].at;
  run_bucket_ = static_cast<std::uint32_t>(idx);
  run_pos_ = b.head;
  while (b.head < b.keys.size() && b.keys[b.head].at == cur_time_) ++b.head;
  run_end_ = b.head;
  ring_count_ -= run_end_ - run_pos_;
  if (b.head == b.keys.size()) {
    bitmap_[idx / 64] &= ~(1ull << (idx % 64));
    --occupied_;
  }
}

Event EventQueue::pop() {
  if (cur_empty()) advance_instant();
  --size_;
  if (!run_done()) {
    Bucket& b = buckets_[run_bucket_];
    if (keyed_ && !own_done()) {
      // Merge the sorted run with the own_ heap on (key, seq).
      const Key& rk = b.keys[run_pos_];
      const Event& ok = own_.front();
      if (ok.key < rk.key || (ok.key == rk.key && ok.seq < rk.seq)) {
        std::pop_heap(own_.begin(), own_.end(), cur_later);
        Event ev = std::move(own_.back());
        own_.pop_back();
        return ev;
      }
    }
    return std::move(b.slab[b.keys[run_pos_++].idx]);
  }
  if (!keyed_) {
    Event ev = std::move(own_[own_head_++]);
    if (own_head_ == own_.size()) {
      own_.clear();
      own_head_ = 0;
    } else if (own_head_ >= 64 && own_head_ >= own_.size() - own_head_) {
      // Ping-pong instants (yield loops) interleave push and pop, so
      // the vector never drains; fold the consumed prefix away once it
      // outweighs the live tail (amortized O(1)) to stay cache-hot.
      own_.erase(own_.begin(),
                 own_.begin() + static_cast<std::ptrdiff_t>(own_head_));
      own_head_ = 0;
    }
    return ev;
  }
  std::pop_heap(own_.begin(), own_.end(), cur_later);
  Event ev = std::move(own_.back());
  own_.pop_back();
  return ev;
}

Time EventQueue::next_time() {
  if (!cur_empty()) return cur_time_;
  if (ring_count_ > 0) {
    Bucket& b = buckets_[scan_from(static_cast<std::size_t>(base_epoch_) %
                                   kBuckets)];
    settle(b);
    return b.keys[b.head].at;
  }
  return overflow_.front().at;
}

}  // namespace kop::sim
