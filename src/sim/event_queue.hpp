// Two-level calendar queue for the engine's pending events.
//
// The previous implementation was a std::priority_queue popped once per
// event: every yield at the current instant round-tripped an O(log n)
// heap, and every pop copied the event (std::function + shared_ptr).
// This queue splits the pending set by distance from the clock:
//
//   * current instant  events with at == cur_time_.  Two sources: the
//     sorted run extracted from the cursor bucket (consumed *in place*
//     via (bucket, key-index) references -- no payload copy) and
//     own_, events pushed at the live instant (the yield()/advance(0)
//     fast path: FIFO appends for the fifo policy, a small binary
//     min-heap on (key, seq) for random/pct).
//   * buckets_  a modular ring of kBuckets time buckets of
//     kBucketWidthNs each, covering the window [base_epoch_,
//     base_epoch_ + kBuckets) bucket-epochs ahead of the clock.  Each
//     bucket is a payload slab plus a parallel vector of 32-byte sort
//     keys (at, key, seq, slab index); only the keys are sorted --
//     lazily, when the cursor reaches the bucket, and only if an
//     append actually broke the ascending order -- so 88-byte Events
//     are moved exactly twice, on push and on pop.  A 64-bit-word
//     occupancy bitmap finds the next nonempty bucket with a couple of
//     countr_zero scans.
//   * overflow_  a binary min-heap on (at, key, seq) for events beyond
//     the ring horizon; drained into the ring as the window advances.
//
// Total order is ascending (at, key, seq), identical to the old
// comparator, so dispatch order -- and therefore every simulation
// output -- is bit-for-bit unchanged under all SchedPolicy modes.
//
// Invariants (the correctness core):
//   * The current instant holds *every* pending event with
//     at == cur_time_; ring and overflow hold only strictly later
//     events.  This is what makes the push fast path
//     (at == cur_time_ -> own_) sound: when an instant becomes current
//     its entire equal-at run is extracted from its (unique) bucket,
//     and later equal-at pushes route to own_.
//   * ring events all have bucket-epoch in [base_epoch_,
//     base_epoch_ + kBuckets); each in-window epoch maps to a unique
//     slot, so a slot never mixes two epochs and a forward modular
//     bitmap scan visits epochs in increasing time order.
//   * overflow events all have bucket-epoch >= base_epoch_ + kBuckets
//     (re-established by migrate_overflow() whenever the window
//     advances), so anything in the ring is earlier than everything in
//     overflow.
//   * The run references its source bucket by index; the bucket's
//     storage is reset only after the run is fully consumed (the
//     retire step at the next advance), and later same-epoch pushes
//     append past the run region, so the references stay valid across
//     slab reallocation.
//   * next_time() never advances the cursor and never extracts a run
//     (it may lazily sort a bucket's keys, which is unobservable);
//     run_until() peeks between every dispatch, so a mutating peek
//     would corrupt ordering when a dispatched event posts new work.
//
// Memory: every level is a retained-capacity vector (the arena), plus
// a small spare pool that recycles drained bucket storage into cold
// bucket indices as the clock marches forward.  allocs() counts
// capacity growths so benchmarks can assert the warm queue allocates
// nothing in steady state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace kop::sim {

class SimThread;

/// A pending wake or callback.  Exactly one of {thread, fn} is set.
struct Event {
  Time at = 0;
  std::uint64_t seq = 0;
  /// Policy tie-break key among events at the same time (0 = FIFO).
  std::uint64_t key = 0;
  SimThread* thread = nullptr;
  std::uint64_t generation = 0;
  std::function<void()> fn;
  /// Vector-clock snapshot of the posting context (racecheck only).
  std::shared_ptr<const std::vector<std::uint64_t>> hb;
};

class EventQueue {
 public:
  /// Ring geometry: 1024 buckets x 8.192us covers ~8.4ms of lookahead
  /// before events spill to the overflow heap.  Both powers of two.
  static constexpr std::size_t kBuckets = 1024;
  static constexpr Time kBucketWidthNs = 8192;

  /// `keyed` selects the current-instant structure: false (FIFO policy)
  /// uses plain queues, true (random/pct) min-heaps on (key, seq).
  explicit EventQueue(bool keyed);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Cumulative heap allocations (vector capacity growths) across all
  /// levels; flat between two points in time == arena fully recycled.
  std::uint64_t allocs() const { return allocs_; }

  /// Insert an event.  `ev.at` must be >= the time of the last pop
  /// (the engine clamps to now()).
  void push(Event ev);

  /// Remove and return the earliest event in (at, key, seq) order.
  /// Queue must be nonempty.
  Event pop();

  /// Earliest pending timestamp without disturbing the cursor.  Queue
  /// must be nonempty.
  Time next_time();

 private:
  /// Sort key mirroring one slab entry; what settle() actually sorts.
  struct Key {
    Time at;
    std::uint64_t key;
    std::uint64_t seq;
    std::uint32_t idx;  // slab index of the payload
  };

  struct Bucket {
    std::vector<Event> slab;  // payloads; stable indices, husks after pop
    std::vector<Key> keys;    // keys[head, end) are live
    std::size_t head = 0;
    bool dirty = false;  // an append broke ascending order
  };

  static constexpr std::uint32_t kNoBucket = ~0u;

  bool run_done() const { return run_pos_ == run_end_; }
  bool own_done() const { return keyed_ ? own_.empty() : own_head_ == own_.size(); }
  bool cur_empty() const { return run_done() && own_done(); }

  /// Extract the run of earliest-instant events and set cur_time_.
  /// Requires cur_empty() and a nonempty ring/overflow.
  void advance_instant();
  /// Reset the run's source bucket once fully drained (storage kept or
  /// donated to the spare pool).
  void retire_run_bucket();
  /// Re-establish the overflow invariant after base_epoch_ advanced.
  void migrate_overflow();
  void ring_insert(Event ev);
  /// Index of the first occupied bucket at/after `start`, modular.
  /// Requires ring_count_ > 0.
  std::size_t scan_from(std::size_t start) const;
  /// Sort bucket `b`'s live keys if dirty (ascending (at, key, seq)).
  void settle(Bucket& b);

  template <typename V, typename X>
  void grow_push(V& v, X&& x) {
    if (v.size() == v.capacity()) ++allocs_;
    v.push_back(std::forward<X>(x));
  }

  bool keyed_;
  std::size_t size_ = 0;
  std::uint64_t allocs_ = 0;

  // Current instant: the in-place bucket run plus directly pushed own_.
  Time cur_time_ = 0;
  std::uint32_t run_bucket_ = kNoBucket;
  std::size_t run_pos_ = 0;  // index into the bucket's keys
  std::size_t run_end_ = 0;
  std::vector<Event> own_;
  std::size_t own_head_ = 0;  // FIFO mode; keyed mode pops the heap

  // Calendar ring.
  std::vector<Bucket> buckets_;
  std::uint64_t bitmap_[kBuckets / 64] = {};
  std::size_t ring_count_ = 0;  // live keys outside the current run
  std::size_t occupied_ = 0;    // buckets with their bitmap bit set
  std::uint64_t base_epoch_ = 0;  // bucket-epoch of the cursor slot

  // Storage recycled between ring slots: a drained bucket donates its
  // vectors (low-water-mark only -- capacity is worth more staying in
  // place when many buckets are live), and a cold bucket's first
  // insert takes them back, so the marching clock does not touch the
  // allocator in steady state.
  struct Spare {
    std::vector<Event> slab;
    std::vector<Key> keys;
  };
  std::vector<Spare> spares_;

  // Beyond-horizon events, min-heap on (at, key, seq).
  std::vector<Event> overflow_;
};

}  // namespace kop::sim
