#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

// AddressSanitizer tracks one shadow stack per host thread, so fiber
// switches need shadow bookkeeping.  GCC's ASan runtime intercepts
// swapcontext itself and manages the shadow across switches natively
// (manual annotations on top of the interceptor corrupt the shadow
// state and cause false stack-buffer-overflow reports after exception
// unwinds).  Clang has no such interceptor, so there the explicit
// __sanitizer_*_switch_fiber annotations below do that job.
#if defined(__clang__) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KOP_ASAN_FIBERS 1
#endif
#endif

#ifdef KOP_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     size_t* stack_size_old);
}
#endif

// ThreadSanitizer models each host thread as one stack of execution;
// without annotations every ucontext switch looks like wild cross-stack
// access.  The fiber API (GCC >= 10 / Clang libtsan) registers each
// fiber as its own TSan "thread"; flag 0 on switch establishes
// happens-before across the transfer, so the cooperative fibers of one
// engine never appear to race with each other while true cross-engine
// races (shared mutable state touched from two JobRunner workers) are
// still caught.
#if defined(__SANITIZE_THREAD__)
#define KOP_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KOP_TSAN_FIBERS 1
#endif
#endif

#ifdef KOP_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace kop::sim {

namespace {

// The fiber whose stack the host thread is currently executing on.
thread_local Fiber* g_current_fiber = nullptr;

#ifdef KOP_ASAN_FIBERS
// Where the currently suspended *host* context's stack lives, so a
// yielding fiber can announce it as the switch destination.  Written on
// arrival in a fiber (finish_switch_fiber out-params), read on yield.
thread_local const void* g_host_stack_bottom = nullptr;
thread_local size_t g_host_stack_size = 0;

void asan_start_switch(void** fake_save, const void* bottom, size_t size) {
  __sanitizer_start_switch_fiber(fake_save, bottom, size);
}
void asan_finish_switch(void* fake_save, const void** bottom, size_t* size) {
  __sanitizer_finish_switch_fiber(fake_save, bottom, size);
}
#else
void asan_start_switch(void**, const void*, size_t) {}
void asan_finish_switch(void*, const void**, size_t*) {}
#endif

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Freelist of retired stack mappings, keyed by total mapped size.  A
// sweep constructs thousands of short-lived engines whose threads each
// mmap/mprotect/munmap a stack; recycling the mapping (guard page and
// all) makes steady-state fiber creation syscall-free.  Thread-local:
// JobRunner workers each keep their own pool, so no locking, and the
// pool dies with its host thread.
struct StackPool {
  struct Entry {
    void* base;
    std::size_t map_bytes;
  };
  static constexpr std::size_t kMaxEntries = 128;
  std::vector<Entry> entries;

  void* take(std::size_t map_bytes) {
    for (std::size_t i = entries.size(); i-- > 0;) {
      if (entries[i].map_bytes == map_bytes) {
        void* base = entries[i].base;
        entries[i] = entries.back();
        entries.pop_back();
        return base;
      }
    }
    return nullptr;
  }

  bool put(void* base, std::size_t map_bytes) {
    if (entries.size() >= kMaxEntries) return false;
    entries.push_back(Entry{base, map_bytes});
    return true;
  }

  ~StackPool() {
    for (const Entry& e : entries) ::munmap(e.base, e.map_bytes);
  }
};

thread_local StackPool g_stack_pool;

}  // namespace

Fiber::Fiber(Entry entry, std::size_t stack_bytes) : entry_(std::move(entry)) {
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(stack_bytes, ps);
  map_bytes_ = usable + ps;  // one guard page below the stack
  void* base = g_stack_pool.take(map_bytes_);
  if (base == nullptr) {
    base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (base == MAP_FAILED) throw std::bad_alloc();
    if (::mprotect(base, ps, PROT_NONE) != 0) {
      ::munmap(base, map_bytes_);
      throw std::runtime_error("fiber: mprotect guard page failed");
    }
  }
  stack_base_ = base;

  if (getcontext(&context_) != 0) {
    ::munmap(base, map_bytes_);
    throw std::runtime_error("fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = static_cast<char*>(base) + ps;
  context_.uc_stack.ss_size = usable;
  context_.uc_link = nullptr;  // finish is handled in the trampoline
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#ifdef KOP_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef KOP_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  // Recycle only stacks with no live frames: a fiber destroyed while
  // suspended mid-run still has frames (and, under ASan, poisoned
  // shadow) on its stack, so that mapping goes back to the kernel.
  const bool clean = finished_ || !started_;
  if (stack_base_ != nullptr &&
      !(clean && g_stack_pool.put(stack_base_, map_bytes_))) {
    ::munmap(stack_base_, map_bytes_);
  }
}

void Fiber::trampoline() {
  // First arrival on this fiber's stack: tell ASan the switch landed
  // and remember the resumer's stack for the trip back.
#ifdef KOP_ASAN_FIBERS
  asan_finish_switch(nullptr, &g_host_stack_bottom, &g_host_stack_size);
#endif
  Fiber* self = g_current_fiber;
  try {
    self->entry_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->finished_ = true;
  self->running_ = false;
  g_current_fiber = nullptr;
  // Return to the resumer; this fiber never runs again (a null
  // fake-stack save lets ASan retire this stack's fake frames).
#ifdef KOP_ASAN_FIBERS
  asan_start_switch(nullptr, g_host_stack_bottom, g_host_stack_size);
#endif
#ifdef KOP_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_return_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable.
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("fiber: resume on finished fiber");
  if (running_) throw std::logic_error("fiber: resume on running fiber");
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  running_ = true;
  started_ = true;
  void* fake = nullptr;
  asan_start_switch(&fake, context_.uc_stack.ss_sp, context_.uc_stack.ss_size);
#ifdef KOP_TSAN_FIBERS
  tsan_return_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_context_, &context_);
  asan_finish_switch(fake, nullptr, nullptr);
  g_current_fiber = prev;
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  if (self == nullptr) throw std::logic_error("fiber: yield outside a fiber");
  self->running_ = false;
  g_current_fiber = nullptr;
  void* fake = nullptr;
#ifdef KOP_ASAN_FIBERS
  asan_start_switch(&fake, g_host_stack_bottom, g_host_stack_size);
#endif
#ifdef KOP_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_return_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
  // Resumed again.
#ifdef KOP_ASAN_FIBERS
  asan_finish_switch(fake, &g_host_stack_bottom, &g_host_stack_size);
#else
  (void)fake;
#endif
  g_current_fiber = self;
  self->running_ = true;
}

Fiber* Fiber::current() { return g_current_fiber; }

std::size_t Fiber::guard_bytes() const { return page_size(); }

}  // namespace kop::sim
