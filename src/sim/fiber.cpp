#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <stdexcept>

namespace kop::sim {

namespace {

// The fiber whose stack the host thread is currently executing on.
thread_local Fiber* g_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

Fiber::Fiber(Entry entry, std::size_t stack_bytes) : entry_(std::move(entry)) {
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(stack_bytes, ps);
  map_bytes_ = usable + ps;  // one guard page below the stack
  void* base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  if (::mprotect(base, ps, PROT_NONE) != 0) {
    ::munmap(base, map_bytes_);
    throw std::runtime_error("fiber: mprotect guard page failed");
  }
  stack_base_ = base;

  if (getcontext(&context_) != 0) {
    ::munmap(base, map_bytes_);
    throw std::runtime_error("fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = static_cast<char*>(base) + ps;
  context_.uc_stack.ss_size = usable;
  context_.uc_link = nullptr;  // finish is handled in the trampoline
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) ::munmap(stack_base_, map_bytes_);
}

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  try {
    self->entry_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->finished_ = true;
  self->running_ = false;
  g_current_fiber = nullptr;
  // Return to the resumer; this fiber never runs again.
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable.
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("fiber: resume on finished fiber");
  if (running_) throw std::logic_error("fiber: resume on running fiber");
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  running_ = true;
  started_ = true;
  swapcontext(&return_context_, &context_);
  g_current_fiber = prev;
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  if (self == nullptr) throw std::logic_error("fiber: yield outside a fiber");
  self->running_ = false;
  g_current_fiber = nullptr;
  swapcontext(&self->context_, &self->return_context_);
  // Resumed again.
  g_current_fiber = self;
  self->running_ = true;
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace kop::sim
