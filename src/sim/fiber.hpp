// Cooperative fibers built on ucontext, used to give every simulated
// thread its own C++ call stack.
//
// A Fiber runs an arbitrary callable on a private mmap'd stack with a
// guard page.  Control transfers are explicit (resume / Fiber::yield);
// the engine resumes a fiber when its wake event fires, and the fiber
// yields back whenever the simulated thread blocks.  Exceptions thrown
// by the entry function are captured and rethrown in the resumer.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>

namespace kop::sim {

class Fiber {
 public:
  using Entry = std::function<void()>;

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit Fiber(Entry entry, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfer control into the fiber.  Returns when the fiber yields or
  /// its entry function returns.  Rethrows any exception that escaped
  /// the entry function.  Must not be called on a finished fiber.
  void resume();

  /// Transfer control from the currently running fiber back to its
  /// resumer.  Must be called from inside a fiber.
  static void yield();

  /// The fiber currently executing on this host thread (nullptr if the
  /// host is running ordinary, non-fiber code).
  static Fiber* current();

  bool finished() const { return finished_; }
  bool running() const { return running_; }

  /// mmap base of this fiber's stack mapping; the PROT_NONE guard page
  /// occupies [stack_base(), stack_base() + guard_bytes()) below the
  /// usable stack.  Exposed so sim::Checkpoint can assert the guard
  /// survived a fork() (COW must not quietly remap it writable).
  const void* stack_base() const { return stack_base_; }
  std::size_t guard_bytes() const;
  std::size_t map_bytes() const { return map_bytes_; }

 private:
  static void trampoline();

  Entry entry_;
  void* stack_base_ = nullptr;   // mmap base (guard page at the bottom)
  std::size_t map_bytes_ = 0;    // total mapped size incl. guard
  ucontext_t context_{};         // fiber's own context
  ucontext_t return_context_{};  // where to go on yield/finish
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
  std::exception_ptr pending_exception_;
  // ThreadSanitizer fiber context (always present so the ABI does not
  // depend on the sanitizer config; null when TSan is off).
  void* tsan_fiber_ = nullptr;   // __tsan_create_fiber handle
  void* tsan_return_ = nullptr;  // resumer's TSan fiber, for yield
};

}  // namespace kop::sim
