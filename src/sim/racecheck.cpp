#include "sim/racecheck.hpp"

#include <algorithm>
#include <sstream>

namespace kop::sim {

RaceChecker::RaceChecker(Engine& engine) : engine_(&engine) {
  clocks_.emplace_back();      // tid 0: the main context
  names_.emplace_back("main");
}

RaceChecker::Clock& RaceChecker::clock_of(std::uint64_t tid) {
  if (tid >= clocks_.size()) {
    clocks_.resize(tid + 1);
    names_.resize(tid + 1, "?");
  }
  Clock& c = clocks_[tid];
  if (c.size() <= tid) c.resize(tid + 1, 0);
  return c;
}

const std::string& RaceChecker::name_of(std::uint64_t tid) {
  clock_of(tid);
  return names_[tid];
}

void RaceChecker::join(Clock& into, const Clock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

void RaceChecker::on_spawn(std::uint64_t child, const std::string& name,
                           std::uint64_t creator) {
  Clock creator_clock = clock_of(creator);  // copy: clock_of may realloc
  Clock& c = clock_of(child);
  names_[child] = name;
  join(c, creator_clock);
  c[child] += 1;  // the child's first epoch is its own
}

std::shared_ptr<const RaceChecker::Clock> RaceChecker::release_snapshot(
    std::uint64_t tid) {
  Clock& c = clock_of(tid);
  auto snap = std::make_shared<Clock>(c);
  c[tid] += 1;  // release: later work of the poster is not covered
  return snap;
}

void RaceChecker::on_resume(std::uint64_t tid,
                            const std::shared_ptr<const Clock>& hb) {
  if (hb) join(clock_of(tid), *hb);
}

void RaceChecker::on_callback(const std::shared_ptr<const Clock>& hb) {
  // Callbacks run on the main context but act *for the poster*: the
  // main clock is replaced (not joined) so unrelated callbacks do not
  // launder happens-before through tid 0.
  Clock& c = clock_of(0);
  if (hb) {
    c.assign(hb->begin(), hb->end());
    if (c.empty()) c.resize(1, 0);
  }
}

void RaceChecker::acquire(const void* obj) {
  auto it = sync_.find(obj);
  if (it == sync_.end()) return;  // never released: nothing to learn
  join(clock_of(engine_->current_tid()), it->second);
}

void RaceChecker::release(const void* obj) {
  const std::uint64_t tid = engine_->current_tid();
  Clock& c = clock_of(tid);
  join(sync_[obj], c);
  c[tid] += 1;
}

void RaceChecker::atomic_load(const void* addr) { acquire(addr); }

void RaceChecker::atomic_store(const void* addr, const char* label) {
  release(addr);
  // Record the write (post-release epoch) so plain accesses that are
  // not ordered with it get flagged; atomics themselves never report.
  const std::uint64_t tid = engine_->current_tid();
  const Clock& c = clock_of(tid);
  VarState& v = vars_[addr];
  v.write = LastAccess{tid, c[tid], engine_->now(), label};
  v.has_write = true;
}

void RaceChecker::atomic_rmw(const void* addr, const char* label) {
  acquire(addr);
  atomic_store(addr, label);
}

bool RaceChecker::ordered(const LastAccess& prev, std::uint64_t tid) {
  if (prev.tid == tid) return true;  // program order
  Clock& c = clock_of(tid);
  return prev.tid < c.size() && prev.epoch <= c[prev.tid];
}

void RaceChecker::report(const void* addr, const LastAccess& prev,
                         bool prev_write, std::uint64_t tid, bool write,
                         const char* label) {
  if (reports_.size() >= max_reports) return;
  Report r;
  r.addr = addr;
  r.prev = Access{prev.tid, name_of(prev.tid), prev_write, prev.at, prev.label};
  r.cur = Access{tid, name_of(tid), write, engine_->now(), label};
  reports_.push_back(std::move(r));
}

void RaceChecker::plain_read(const void* addr, const char* label) {
  const std::uint64_t tid = engine_->current_tid();
  VarState& v = vars_[addr];
  if (v.has_write && !v.reported && !ordered(v.write, tid)) {
    v.reported = true;
    report(addr, v.write, /*prev_write=*/true, tid, /*write=*/false, label);
  }
  const Clock& c = clock_of(tid);
  const LastAccess me{tid, c[tid], engine_->now(), label};
  for (auto& r : v.reads) {
    if (r.tid == tid) {
      r = me;
      return;
    }
  }
  v.reads.push_back(me);
}

void RaceChecker::plain_write(const void* addr, const char* label) {
  const std::uint64_t tid = engine_->current_tid();
  VarState& v = vars_[addr];
  if (!v.reported) {
    if (v.has_write && !ordered(v.write, tid)) {
      v.reported = true;
      report(addr, v.write, /*prev_write=*/true, tid, /*write=*/true, label);
    } else {
      for (const auto& r : v.reads) {
        if (!ordered(r, tid)) {
          v.reported = true;
          report(addr, r, /*prev_write=*/false, tid, /*write=*/true, label);
          break;
        }
      }
    }
  }
  const Clock& c = clock_of(tid);
  v.write = LastAccess{tid, c[tid], engine_->now(), label};
  v.has_write = true;
  v.reads.clear();
}

std::string RaceChecker::Report::to_string() const {
  std::ostringstream oss;
  oss << "data race on " << cur.label << " (" << addr << "): "
      << (cur.write ? "write" : "read") << " by [" << cur.tid << ":"
      << cur.thread << "] at t=" << cur.at << "ns is unordered with "
      << (prev.write ? "write" : "read") << " by [" << prev.tid << ":"
      << prev.thread << "] (" << prev.label << ") at t=" << prev.at << "ns";
  return oss.str();
}

}  // namespace kop::sim
