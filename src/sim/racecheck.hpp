// Vector-clock happens-before race detection for the simulator.
//
// The cooperative engine serializes execution, so nothing ever *tears*
// -- but the simulated program still has a concurrency structure, and
// an access pattern that is only correct because the simulator happened
// to serialize it is a real bug in the system being modelled.  The
// RaceChecker makes that structure explicit:
//
//   * every SimThread (plus the main context, tid 0) carries a vector
//     clock; spawn, wake, and callback posting transfer clocks exactly
//     the way sched_wakeup / futex-wake edges do in a real kernel;
//   * synchronization objects (osal::Mutex, WaitQueue notifies, komp
//     barriers) publish and acquire clocks through acquire()/release();
//   * shared locations the runtime layers care about (barrier
//     generation counters, task-deque heads/tails, ICVs) are annotated
//     with plain_read/plain_write -- the detector reports any pair of
//     accesses, at least one a write, that are not ordered by
//     happens-before;
//   * locations that model hardware atomics (lock words, arrival
//     counters) use the atomic_* hooks: they create per-address
//     acquire/release edges instead of being race-checked, exactly like
//     std::atomic with memory_order_acq_rel.
//
// The detector is opt-in (Engine::enable_racecheck) and costs nothing
// when disabled: every annotation helper below is a null-check.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace kop::sim {

class RaceChecker {
 public:
  using Clock = std::vector<std::uint64_t>;  // indexed by thread id

  explicit RaceChecker(Engine& engine);

  /// One side of a racy pair.
  struct Access {
    std::uint64_t tid = 0;
    std::string thread;  // SimThread name ("main" for the main context)
    bool write = false;
    Time at = 0;
    std::string label;  // the annotation's location label
  };

  struct Report {
    const void* addr = nullptr;
    Access prev, cur;
    std::string to_string() const;
  };

  // --- annotation surface (call via the helpers in sim::race) ---

  /// Acquire/release on a synchronization *object* (a mutex, a wait
  /// queue, a whole barrier).  release publishes the caller's clock
  /// into the object; acquire joins the object's clock into the caller.
  void acquire(const void* obj);
  void release(const void* obj);

  /// Modelled hardware atomics on an *address*: hb edges.  Atomic
  /// accesses never trigger reports themselves, but atomic writes are
  /// recorded so an *unsynchronized plain* access to the same location
  /// is still flagged (mixing atomic and plain unordered accesses is a
  /// data race in the C++ model too).
  void atomic_load(const void* addr);                       // acquire
  void atomic_store(const void* addr, const char* label);   // release
  void atomic_rmw(const void* addr, const char* label);     // acquire+release

  /// Plain shared accesses: race-checked against the location history.
  void plain_read(const void* addr, const char* label);
  void plain_write(const void* addr, const char* label);

  bool racy() const { return !reports_.empty(); }
  const std::vector<Report>& reports() const { return reports_; }
  /// Reporting stops (but hb tracking continues) after this many races.
  std::size_t max_reports = 16;

  // --- engine hooks (called by Engine; not part of the public API) ---
  void on_spawn(std::uint64_t child, const std::string& name,
                std::uint64_t creator);
  std::shared_ptr<const Clock> release_snapshot(std::uint64_t tid);
  void on_resume(std::uint64_t tid,
                 const std::shared_ptr<const Clock>& hb);
  void on_callback(const std::shared_ptr<const Clock>& hb);

 private:
  struct LastAccess {
    std::uint64_t tid = 0;
    std::uint64_t epoch = 0;
    Time at = 0;
    const char* label = "";
  };
  struct VarState {
    LastAccess write;
    bool has_write = false;
    std::vector<LastAccess> reads;  // at most one entry per tid
    bool reported = false;          // one report per location
  };

  Clock& clock_of(std::uint64_t tid);
  const std::string& name_of(std::uint64_t tid);
  static void join(Clock& into, const Clock& from);
  /// prev happens-before the current state of `tid`?
  bool ordered(const LastAccess& prev, std::uint64_t tid);
  void report(const void* addr, const LastAccess& prev, bool prev_write,
              std::uint64_t tid, bool write, const char* label);

  Engine* engine_;
  std::vector<Clock> clocks_;        // by tid; [0] is the main context
  std::vector<std::string> names_;
  std::unordered_map<const void*, Clock> sync_;
  std::unordered_map<const void*, VarState> vars_;
  std::vector<Report> reports_;
};

/// Annotation helpers: no-ops when the engine has no checker attached.
namespace race {

inline void acquire(Engine& e, const void* obj) {
  if (auto* rc = e.racecheck()) rc->acquire(obj);
}
inline void release(Engine& e, const void* obj) {
  if (auto* rc = e.racecheck()) rc->release(obj);
}
inline void atomic_load(Engine& e, const void* addr) {
  if (auto* rc = e.racecheck()) rc->atomic_load(addr);
}
inline void atomic_store(Engine& e, const void* addr, const char* label) {
  if (auto* rc = e.racecheck()) rc->atomic_store(addr, label);
}
inline void atomic_rmw(Engine& e, const void* addr, const char* label) {
  if (auto* rc = e.racecheck()) rc->atomic_rmw(addr, label);
}
inline void plain_read(Engine& e, const void* addr, const char* label) {
  if (auto* rc = e.racecheck()) rc->plain_read(addr, label);
}
inline void plain_write(Engine& e, const void* addr, const char* label) {
  if (auto* rc = e.racecheck()) rc->plain_write(addr, label);
}

}  // namespace race
}  // namespace kop::sim
