// Flat power-of-two ring buffer with a deque interface (push_back,
// pop_front, pop_back).  Replaces std::deque in the task hot paths:
// one contiguous allocation instead of a chunk map, indices instead of
// iterator arithmetic, and -- the point -- retained capacity, so a
// warm queue never touches the allocator again.  Popped slots are
// reset to a default-constructed T immediately so payloads holding
// resources (std::function captures) are released at pop, matching
// std::deque's destruction timing.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace kop::sim {

template <typename T>
class RingDeque {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return buf_[wrap(head_ + count_ - 1)]; }
  const T& back() const { return buf_[wrap(head_ + count_ - 1)]; }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[wrap(head_ + count_)] = std::move(v);
    ++count_;
  }

  void pop_front() {
    buf_[head_] = T();
    head_ = wrap(head_ + 1);
    --count_;
  }

  void pop_back() {
    buf_[wrap(head_ + count_ - 1)] = T();
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_back();
    head_ = 0;
  }

 private:
  std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[wrap(head_ + i)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace kop::sim
