#include "sim/rng.hpp"

#include <cmath>

namespace kop::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0.0) return 0.0;
  if (cv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace kop::sim
