// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** seeded through splitmix64.  Every stochastic cost
// model (OS noise arrival, futex wake jitter, ...) draws from an engine-
// owned Rng so that a fixed seed reproduces a bit-identical simulation.
#pragma once

#include <cstdint>

namespace kop::sim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
///
/// Not a std-style generator on purpose: the handful of distributions the
/// cost models need are provided directly, which keeps call sites terse
/// and avoids accidental use of platform-dependent std distributions
/// (their sequences differ across standard libraries, which would break
/// cross-toolchain determinism).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the mean/cv of the *resulting*
  /// distribution; handy for latency jitter that must stay positive.
  double lognormal_mean_cv(double mean, double cv);

  /// Derive an independent stream (e.g., one per simulated CPU).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace kop::sim
