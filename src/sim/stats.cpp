#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace kop::sim {

void Stats::add(double x) { samples_.push_back(x); }

void Stats::clear() { samples_.clear(); }

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

double Stats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  // Selection instead of a full sort: O(n) for the lo rank, then the
  // hi value is the minimum of the suffix nth_element leaves behind.
  std::vector<double> work = samples_;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(work.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const auto lo_it = work.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(work.begin(), lo_it, work.end());
  const double lo_val = *lo_it;
  if (frac == 0.0 || lo + 1 >= work.size()) return lo_val;
  const double hi_val = *std::min_element(lo_it + 1, work.end());
  return lo_val * (1.0 - frac) + hi_val * frac;
}

double Stats::trimmed_mean(double k) const {
  if (samples_.empty()) return 0.0;
  const double m = mean();
  const double sd = stddev();
  if (sd == 0.0) return m;
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : samples_) {
    if (std::abs(x - m) <= k * sd) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? m : sum / static_cast<double>(n);
}

double Stats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace kop::sim
