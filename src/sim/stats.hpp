// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace kop::sim {

/// Accumulates samples and answers the summary questions the EPCC/NAS
/// harnesses ask (mean, stddev, min/max, percentiles, outlier-trimmed
/// mean a la the EPCC reference implementation).
class Stats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  /// Mean of samples within `k` standard deviations of the mean
  /// (EPCC-style outlier rejection).  Falls back to mean() if everything
  /// is rejected.
  double trimmed_mean(double k = 3.0) const;
  /// Coefficient of variation (stddev / mean); 0 if mean is 0.
  double cv() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Geometric mean of a set of strictly positive values; 0 if empty.
double geomean(const std::vector<double>& xs);

}  // namespace kop::sim
