// Virtual-time definitions for the discrete-event simulator.
//
// All simulated durations and timestamps are expressed in virtual
// nanoseconds.  Virtual time has no relation to wall-clock time: a
// 192-core, hour-long NAS run advances virtual time by an hour while
// consuming only as much wall-clock as the event processing costs.
#pragma once

#include <cstdint>

namespace kop::sim {

/// A point in, or span of, virtual time.  Unit: nanoseconds.
using Time = std::int64_t;

/// Sentinel meaning "no deadline" / "never".
inline constexpr Time kTimeNever = INT64_MAX;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000;
inline constexpr Time kMillisecond = 1000 * 1000;
inline constexpr Time kSecond = 1000 * 1000 * 1000;

/// Convert virtual nanoseconds to floating-point seconds (for reports).
constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

/// Convert virtual nanoseconds to floating-point microseconds.
constexpr double to_micros(Time t) { return static_cast<double>(t) * 1e-3; }

}  // namespace kop::sim
