#include "telemetry/counters.hpp"

namespace kop::telemetry {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kPageFaults:       return "page_faults";
    case Counter::kTlbMisses:        return "tlb_misses";
    case Counter::kTimerTicks:       return "timer_ticks";
    case Counter::kNoisePreemptions: return "noise_preemptions";
    case Counter::kCpuPreemptions:   return "cpu_preemptions";
    case Counter::kContextSwitches:  return "context_switches";
    case Counter::kSyscalls:         return "syscalls";
    case Counter::kIpis:             return "ipis";
    case Counter::kDeviceInterrupts: return "device_interrupts";
    case Counter::kFutexWaits:       return "futex_waits";
    case Counter::kFutexWakes:       return "futex_wakes";
    case Counter::kBlockingWakes:    return "blocking_wakes";
    case Counter::kSpinWakes:        return "spin_wakes";
    case Counter::kThreadsCreated:   return "threads_created";
    case Counter::kTaskSteals:       return "task_steals";
    case Counter::kTaskStealsLocal:  return "task_steals_local";
    case Counter::kTaskStealsRemote: return "task_steals_remote";
    case Counter::kPageMigrations:   return "page_migrations";
    case Counter::kCount:            break;
  }
  return "unknown";
}

std::uint64_t Snapshot::attributed(Counter c) const {
  const int idx = static_cast<int>(c);
  std::uint64_t sum = 0;
  for (const auto& row : per_cpu) sum += row[idx];
  return sum;
}

std::vector<std::string> check_conservation(const Snapshot& snap) {
  std::vector<std::string> violations;
  for (int i = 0; i < kNumCounters; ++i) {
    const Counter c = static_cast<Counter>(i);
    const std::uint64_t per_cpu_sum = snap.attributed(c);
    if (per_cpu_sum > snap.totals[i]) {
      violations.push_back(std::string(counter_name(c)) + ": per-CPU sum " +
                           std::to_string(per_cpu_sum) + " exceeds total " +
                           std::to_string(snap.totals[i]));
    }
  }
  return violations;
}

CounterFabric::CounterFabric(int num_cpus)
    : per_cpu_(static_cast<std::size_t>(num_cpus < 0 ? 0 : num_cpus)) {}

void CounterFabric::add_on(int cpu, Counter c, std::uint64_t delta) {
  const int idx = static_cast<int>(c);
  if (cpu >= 0 && cpu < num_cpus()) {
    per_cpu_[static_cast<std::size_t>(cpu)][idx] += delta;
  } else {
    unattributed_[idx] += delta;
  }
}

std::uint64_t CounterFabric::total(Counter c) const {
  const int idx = static_cast<int>(c);
  std::uint64_t sum = unattributed_[idx];
  for (const auto& row : per_cpu_) sum += row[idx];
  return sum;
}

std::uint64_t CounterFabric::on_cpu(int cpu, Counter c) const {
  if (cpu < 0 || cpu >= num_cpus()) return 0;
  return per_cpu_[static_cast<std::size_t>(cpu)][static_cast<int>(c)];
}

Snapshot CounterFabric::snapshot() const {
  Snapshot s;
  s.per_cpu = per_cpu_;
  for (int i = 0; i < kNumCounters; ++i) {
    s.totals[i] = total(static_cast<Counter>(i));
  }
  return s;
}

void CounterFabric::reset() {
  unattributed_.fill(0);
  for (auto& row : per_cpu_) row.fill(0);
}

}  // namespace kop::telemetry
