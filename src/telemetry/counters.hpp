#pragma once

// Per-CPU hardware/OS event-counter fabric.
//
// Every OS substrate (LinuxOs, NautilusKernel, PikOs) owns one
// CounterFabric; the hw and osal layers feed it as they charge costs, so
// an experiment's counters explain *why* its end-to-end time looks the
// way it does (paper §6.2: page faults, TLB misses, interrupts,
// competing-thread preemptions).
//
// This library depends on nothing but the standard library so any layer
// may link it.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace kop::telemetry {

enum class Counter : int {
  kPageFaults = 0,     // demand-paging minor faults taken while touching memory
  kTlbMisses,          // modelled TLB misses (walks charged by ExecModel)
  kTimerTicks,         // periodic timer interrupts delivered during compute
  kNoisePreemptions,   // OS-noise events (daemons, kworkers) stealing the CPU
  kCpuPreemptions,     // timeslice preemptions due to CPU oversubscription
  kContextSwitches,    // context switches charged (preemption + blocking wakes)
  kSyscalls,           // syscall-priced kernel crossings
  kIpis,               // inter-processor interrupts (kernel-mode remote wakes)
  kDeviceInterrupts,   // device IRQs delivered by the interrupt controller
  kFutexWaits,         // futex wait operations that actually slept
  kFutexWakes,         // futex wake operations
  kBlockingWakes,      // wait-queue wakes that had to unblock a sleeper
  kSpinWakes,          // wait-queue wakes satisfied while the waiter still spun
  kThreadsCreated,     // OS threads created
  kTaskSteals,         // tasks stolen across worker queues (komp + virgil + nk)
  kTaskStealsLocal,    // steals whose victim shares the thief's NUMA zone
  kTaskStealsRemote,   // steals that crossed a NUMA zone boundary
  kPageMigrations,     // slices re-homed by migration-on-next-touch
  kCount,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

// Stable snake_case name used in JSON exports and tables.
const char* counter_name(Counter c);

// Aggregated copy of a fabric, safe to keep after the OS is gone.
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> totals{};
  // per_cpu[cpu][counter]; events with no attributable CPU live only in
  // `totals`.
  std::vector<std::array<std::uint64_t, kNumCounters>> per_cpu;

  std::uint64_t total(Counter c) const {
    return totals[static_cast<int>(c)];
  }
  std::uint64_t on_cpu(int cpu, Counter c) const {
    return per_cpu[static_cast<std::size_t>(cpu)][static_cast<int>(c)];
  }
  /// Sum of the per-CPU attributions for one counter (the part of
  /// total() that names a CPU; the remainder is the unattributed
  /// bucket, which is never negative in a conserving fabric).
  std::uint64_t attributed(Counter c) const;
};

/// Counter conservation check: for every counter, the per-CPU
/// attributions must sum to at most the total (totals = per-CPU sums +
/// a non-negative unattributed bucket; a per-CPU sum exceeding its
/// total means an attribution was double-counted or a total was lost).
/// Returns one human-readable violation string per broken counter --
/// empty means the snapshot conserves.  This is the telemetry-side
/// invariant hook the propcheck harness asserts per random point.
std::vector<std::string> check_conservation(const Snapshot& snap);

class CounterFabric {
 public:
  explicit CounterFabric(int num_cpus);

  int num_cpus() const { return static_cast<int>(per_cpu_.size()); }

  // Attribute `delta` events to `cpu`. cpu < 0 (or out of range) records
  // into the unattributed bucket, which still contributes to totals.
  void add_on(int cpu, Counter c, std::uint64_t delta = 1);
  // Unattributed convenience.
  void add(Counter c, std::uint64_t delta = 1) { add_on(-1, c, delta); }

  std::uint64_t total(Counter c) const;
  std::uint64_t on_cpu(int cpu, Counter c) const;

  Snapshot snapshot() const;
  void reset();

  /// Checkpoint boundary bookkeeping: remember the counter state at the
  /// warmup/measurement split (Engine::snapshot_point).  The reported
  /// end-of-run snapshot still includes warmup counts -- a forked
  /// measurement phase inherits them via COW, so cold and checkpointed
  /// runs stay byte-identical -- but the segment base lets diagnostics
  /// subtract the warmup contribution when they want phase deltas.
  void mark_segment() {
    segment_base_ = snapshot();
    segment_marked_ = true;
  }
  bool segment_marked() const { return segment_marked_; }
  const Snapshot& segment_base() const { return segment_base_; }

 private:
  std::vector<std::array<std::uint64_t, kNumCounters>> per_cpu_;
  std::array<std::uint64_t, kNumCounters> unattributed_{};
  Snapshot segment_base_;
  bool segment_marked_ = false;
};

}  // namespace kop::telemetry
