#include "telemetry/counterset.hpp"

#include "telemetry/json.hpp"

namespace kop::telemetry {

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterSet::items() const {
  return {counts_.begin(), counts_.end()};
}

std::string CounterSet::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& [name, count] : counts_) w.key(name).value(count);
  w.end_object();
  return w.str();
}

}  // namespace kop::telemetry
