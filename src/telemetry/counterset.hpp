#pragma once

// Named operational counters for long-lived services.
//
// The CounterFabric (counters.hpp) is the *simulation's* event fabric:
// a fixed enum, per-CPU attribution, part of the kop-metrics schema.
// Service daemons (the sweep coordinator) need something different --
// an open-ended set of operational counters (leases granted, cache
// hits on the serving path) that renders deterministically for STATS
// endpoints and tests without touching the versioned run schema.
//
// CounterSet is that: a name -> count map with stable (sorted)
// iteration order and a one-line JSON rendering.  std-only, like the
// rest of the telemetry layer.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kop::telemetry {

class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counts_[name] += delta;
  }
  /// 0 for a counter never add()ed (and it stays absent from items()).
  std::uint64_t get(const std::string& name) const;

  /// All counters, sorted by name (std::map order) -- deterministic
  /// across hosts, suitable for golden assertions.
  std::vector<std::pair<std::string, std::uint64_t>> items() const;

  /// One-line JSON object, keys sorted: {"cache_hits":3,"leases":9}.
  std::string to_json() const;

  void reset() { counts_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace kop::telemetry
