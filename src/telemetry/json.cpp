#include "telemetry/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kop::telemetry {

// ---------------------------------------------------------------------------
// Writer

JsonWriter::JsonWriter() { first_in_scope_.push_back(true); }

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already emitted the separator for this value
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[64];
  // Integers print without an exponent; everything else round-trips.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -9.0e15 && v < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't': case 'f': return parse_bool();
      case 'n': return parse_null();
      default:  return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(k), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"':  out += '"'; break;
          case '\\': out += '\\'; break;
          case '/':  out += '/'; break;
          case 'n':  out += '\n'; break;
          case 't':  out += '\t'; break;
          case 'r':  out += '\r'; break;
          case 'b':  out += '\b'; break;
          case 'f':  out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // ASCII only; anything else round-trips as '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) fail("invalid number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, val] : object) {
    if (key == k) return &val;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace kop::telemetry
