#pragma once

// Minimal JSON support for the metrics/trace exports.
//
// JsonWriter is a streaming writer that preserves insertion order, so
// exports have a *stable* field order suitable for golden tests.  The
// parser produces a JsonValue tree whose objects also preserve key order
// (they are vectors of pairs), letting tests assert field ordering.
//
// Deliberately small: no unicode escapes beyond pass-through, numbers
// are doubles (exact for the integer magnitudes we emit).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace kop::telemetry {

class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value inside an object.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Preserves source order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // nullptr when the key is absent or this is not an object.
  const JsonValue* find(const std::string& k) const;
};

struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Throws JsonParseError on malformed input (including trailing garbage).
JsonValue parse_json(const std::string& text);

}  // namespace kop::telemetry
