#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace kop::telemetry {

namespace {

void check_counters_object(const JsonValue& counters, const std::string& where,
                           std::vector<std::string>* out) {
  if (!counters.is_object()) {
    out->push_back(where + ": \"counters\" must be an object");
    return;
  }
  // All counters present, in enum order, non-negative integers.
  if (counters.object.size() != static_cast<std::size_t>(kNumCounters)) {
    out->push_back(where + ": \"counters\" must have exactly " +
                   std::to_string(kNumCounters) + " entries, got " +
                   std::to_string(counters.object.size()));
  }
  const std::size_t n =
      std::min(counters.object.size(), static_cast<std::size_t>(kNumCounters));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [key, val] = counters.object[i];
    const char* expect = counter_name(static_cast<Counter>(i));
    if (key != expect) {
      out->push_back(where + ": counter #" + std::to_string(i) +
                     " must be \"" + expect + "\", got \"" + key + "\"");
    }
    if (!val.is_number() || val.number < 0 ||
        val.number != std::floor(val.number)) {
      out->push_back(where + ": counter \"" + key +
                     "\" must be a non-negative integer");
    }
  }
}

void check_run(const JsonValue& run, std::size_t idx,
               std::vector<std::string>* out) {
  const std::string where = "runs[" + std::to_string(idx) + "]";
  if (!run.is_object()) {
    out->push_back(where + ": must be an object");
    return;
  }

  static const std::set<std::string> allowed = {
      "label",    "machine", "path",  "threads",
      "timing",   "counters", "per_cpu", "zones",
      "constructs"};
  for (const auto& [key, val] : run.object) {
    (void)val;
    if (!allowed.count(key)) {
      out->push_back(where + ": unknown key \"" + key + "\"");
    }
  }

  for (const char* k : {"label", "machine", "path"}) {
    const JsonValue* v = run.find(k);
    if (!v || !v->is_string() || v->string.empty()) {
      out->push_back(where + ": \"" + k + "\" must be a non-empty string");
    }
  }

  const JsonValue* threads = run.find("threads");
  if (!threads || !threads->is_number() || threads->number < 1 ||
      threads->number != std::floor(threads->number)) {
    out->push_back(where + ": \"threads\" must be an integer >= 1");
  }

  const JsonValue* timing = run.find("timing");
  if (!timing || !timing->is_object()) {
    out->push_back(where + ": \"timing\" must be an object");
  } else {
    for (const char* k : {"timed_seconds", "init_seconds"}) {
      const JsonValue* v = timing->find(k);
      if (!v || !v->is_number() || v->number < 0) {
        out->push_back(where + ": timing." + k +
                       " must be a non-negative number");
      }
    }
  }

  const JsonValue* counters = run.find("counters");
  if (!counters) {
    out->push_back(where + ": missing \"counters\"");
  } else {
    check_counters_object(*counters, where, out);
  }

  if (const JsonValue* per_cpu = run.find("per_cpu")) {
    if (!per_cpu->is_object()) {
      out->push_back(where + ": \"per_cpu\" must be an object");
    } else {
      for (const auto& [key, arr] : per_cpu->object) {
        if (!arr.is_array()) {
          out->push_back(where + ": per_cpu." + key + " must be an array");
          continue;
        }
        for (const JsonValue& v : arr.array) {
          if (!v.is_number() || v.number < 0) {
            out->push_back(where + ": per_cpu." + key +
                           " entries must be non-negative numbers");
            break;
          }
        }
      }
    }
  }

  // "zones" is the per-NUMA-zone aggregation of per_cpu (same shape,
  // shorter arrays); a document that carries zones without the per_cpu
  // rows it is derived from is malformed.
  if (const JsonValue* zones = run.find("zones")) {
    if (run.find("per_cpu") == nullptr) {
      out->push_back(where + ": \"zones\" requires \"per_cpu\"");
    }
    if (!zones->is_object()) {
      out->push_back(where + ": \"zones\" must be an object");
    } else {
      for (const auto& [key, arr] : zones->object) {
        if (!arr.is_array()) {
          out->push_back(where + ": zones." + key + " must be an array");
          continue;
        }
        for (const JsonValue& v : arr.array) {
          if (!v.is_number() || v.number < 0) {
            out->push_back(where + ": zones." + key +
                           " entries must be non-negative numbers");
            break;
          }
        }
      }
    }
  }

  if (const JsonValue* constructs = run.find("constructs")) {
    if (!constructs->is_object()) {
      out->push_back(where + ": \"constructs\" must be an object");
    } else {
      for (const auto& [name, c] : constructs->object) {
        if (!c.is_object()) {
          out->push_back(where + ": constructs." + name +
                         " must be an object");
          continue;
        }
        for (const char* k : {"count", "total_us", "mean_us"}) {
          const JsonValue* v = c.find(k);
          if (!v || !v->is_number() || v->number < 0) {
            out->push_back(where + ": constructs." + name + "." + k +
                           " must be a non-negative number");
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate_metrics_json(const std::string& text) {
  std::vector<std::string> out;
  JsonValue root;
  try {
    root = parse_json(text);
  } catch (const JsonParseError& e) {
    out.push_back(e.what());
    return out;
  }

  if (!root.is_object()) {
    out.push_back("root must be an object");
    return out;
  }

  const JsonValue* schema = root.find("schema");
  if (!schema || !schema->is_string() ||
      schema->string != kMetricsSchemaName) {
    out.push_back("\"schema\" must be \"" +
                  std::string(kMetricsSchemaName) + "\"");
  }

  const JsonValue* version = root.find("version");
  if (!version || !version->is_number() ||
      version->number != kMetricsSchemaVersion) {
    out.push_back("\"version\" must be " +
                  std::to_string(kMetricsSchemaVersion));
  }

  const JsonValue* generator = root.find("generator");
  if (!generator || !generator->is_string() || generator->string.empty()) {
    out.push_back("\"generator\" must be a non-empty string");
  }

  const JsonValue* runs = root.find("runs");
  if (!runs || !runs->is_array()) {
    out.push_back("\"runs\" must be an array");
    return out;
  }
  if (runs->array.empty()) {
    out.push_back("\"runs\" must not be empty");
  }
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    check_run(runs->array[i], i, &out);
  }
  return out;
}

std::vector<std::string> validate_bench_json(const std::string& text) {
  std::vector<std::string> out;
  JsonValue root;
  try {
    root = parse_json(text);
  } catch (const JsonParseError& e) {
    out.push_back(e.what());
    return out;
  }

  if (!root.is_object()) {
    out.push_back("root must be an object");
    return out;
  }

  const JsonValue* schema = root.find("schema");
  if (!schema || !schema->is_string() || schema->string != kBenchSchemaName) {
    out.push_back("\"schema\" must be \"" + std::string(kBenchSchemaName) +
                  "\"");
  }

  const JsonValue* version = root.find("version");
  if (!version || !version->is_number() ||
      version->number != kBenchSchemaVersion) {
    out.push_back("\"version\" must be " + std::to_string(kBenchSchemaVersion));
  }

  const JsonValue* generator = root.find("generator");
  if (!generator || !generator->is_string() || generator->string.empty()) {
    out.push_back("\"generator\" must be a non-empty string");
  }

  const JsonValue* benches = root.find("benches");
  if (!benches || !benches->is_array()) {
    out.push_back("\"benches\" must be an array");
    return out;
  }
  if (benches->array.empty()) {
    out.push_back("\"benches\" must not be empty");
  }

  std::set<std::string> names;
  for (std::size_t i = 0; i < benches->array.size(); ++i) {
    const JsonValue& b = benches->array[i];
    const std::string where = "benches[" + std::to_string(i) + "]";
    if (!b.is_object()) {
      out.push_back(where + ": must be an object");
      continue;
    }
    static const std::set<std::string> allowed = {
        "name", "unit", "items", "seconds", "items_per_sec", "allocs_steady"};
    for (const auto& [key, val] : b.object) {
      (void)val;
      if (!allowed.count(key)) {
        out.push_back(where + ": unknown key \"" + key + "\"");
      }
    }
    for (const char* k : {"name", "unit"}) {
      const JsonValue* v = b.find(k);
      if (!v || !v->is_string() || v->string.empty()) {
        out.push_back(where + ": \"" + k + "\" must be a non-empty string");
      }
    }
    const JsonValue* name = b.find("name");
    if (name && name->is_string() && !name->string.empty() &&
        !names.insert(name->string).second) {
      out.push_back(where + ": duplicate bench name \"" + name->string + "\"");
    }
    for (const char* k : {"items", "allocs_steady"}) {
      const JsonValue* v = b.find(k);
      if (!v || !v->is_number() || v->number < 0 ||
          v->number != std::floor(v->number)) {
        out.push_back(where + ": \"" + std::string(k) +
                      "\" must be a non-negative integer");
      }
    }
    for (const char* k : {"seconds", "items_per_sec"}) {
      const JsonValue* v = b.find(k);
      if (!v || !v->is_number() || v->number < 0) {
        out.push_back(where + ": \"" + std::string(k) +
                      "\" must be a non-negative number");
      }
    }
  }
  return out;
}

}  // namespace kop::telemetry
