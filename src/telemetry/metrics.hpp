#pragma once

// Versioned "kop-metrics" JSON schema shared by run_experiment --json,
// the bench/fig* binaries, and examples/omp_profiler.  One schema for
// all exports so CI can lint every artifact with the same validator.
//
// Schema v1 (all field order is stable, extra keys are violations):
//
//   {
//     "schema": "kop-metrics",
//     "version": 1,
//     "generator": "<binary name>",          // free-form, required
//     "runs": [
//       {
//         "label": "<string>",               // e.g. "cg.S t4"
//         "machine": "<string>",             // e.g. "phi" | "xeon" | ...
//         "path": "<string>",                // e.g. "linux-omp" | "rtk"
//         "threads": <int >= 1>,
//         "timing": {
//           "timed_seconds": <number >= 0>,
//           "init_seconds": <number >= 0>
//         },
//         "counters": { "<counter>": <int >= 0>, ... },  // all 15, in
//                                                        // enum order
//         "per_cpu": { "<counter>": [<int>, ...], ... }, // optional
//         "constructs": {                                 // optional
//           "<construct>": { "count": <int>, "total_us": <number>,
//                             "mean_us": <number> }, ...
//         }
//       }, ...
//     ]
//   }

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

namespace kop::telemetry {

inline constexpr const char* kMetricsSchemaName = "kop-metrics";
inline constexpr int kMetricsSchemaVersion = 1;

// Returns a list of human-readable schema violations; empty means the
// document is a valid kop-metrics v1 export.  Malformed JSON is reported
// as a single violation rather than thrown.
std::vector<std::string> validate_metrics_json(const std::string& text);

}  // namespace kop::telemetry
