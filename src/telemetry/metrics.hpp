#pragma once

// Versioned "kop-metrics" JSON schema shared by run_experiment --json,
// the bench/fig* binaries, and examples/omp_profiler.  One schema for
// all exports so CI can lint every artifact with the same validator.
//
// Schema v1 (all field order is stable, extra keys are violations):
//
//   {
//     "schema": "kop-metrics",
//     "version": 1,
//     "generator": "<binary name>",          // free-form, required
//     "runs": [
//       {
//         "label": "<string>",               // e.g. "cg.S t4"
//         "machine": "<string>",             // e.g. "phi" | "xeon" | ...
//         "path": "<string>",                // e.g. "linux-omp" | "rtk"
//         "threads": <int >= 1>,
//         "timing": {
//           "timed_seconds": <number >= 0>,
//           "init_seconds": <number >= 0>
//         },
//         "counters": { "<counter>": <int >= 0>, ... },  // all
//                                     // kNumCounters, in enum order
//         "per_cpu": { "<counter>": [<int>, ...], ... }, // optional
//         "zones": { "<counter>": [<int>, ...], ... },   // optional:
//                                     // per-NUMA-zone aggregation of
//                                     // per_cpu (derived, never stored
//                                     // without per_cpu)
//         "constructs": {                                 // optional
//           "<construct>": { "count": <int>, "total_us": <number>,
//                             "mean_us": <number> }, ...
//         }
//       }, ...
//     ]
//   }

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

namespace kop::telemetry {

inline constexpr const char* kMetricsSchemaName = "kop-metrics";
inline constexpr int kMetricsSchemaVersion = 1;

// Companion schema for host-side microbenchmark exports ("kop-bench"
// v1), emitted by bench/simcore_gbench --json and consumed by the CI
// perf gate (examples/kop_perfgate):
//
//   {
//     "schema": "kop-bench",
//     "version": 1,
//     "generator": "<binary name>",
//     "benches": [
//       {
//         "name": "<string>",            // e.g. "event_loop"
//         "unit": "<string>",            // what items counts, e.g. "events"
//         "items": <int >= 0>,
//         "seconds": <number >= 0>,
//         "items_per_sec": <number >= 0>,
//         "allocs_steady": <int >= 0>    // queue allocs after warm-up
//       }, ...
//     ]
//   }
inline constexpr const char* kBenchSchemaName = "kop-bench";
inline constexpr int kBenchSchemaVersion = 1;

// Returns a list of human-readable schema violations; empty means the
// document is a valid kop-metrics v1 export.  Malformed JSON is reported
// as a single violation rather than thrown.
std::vector<std::string> validate_metrics_json(const std::string& text);

// Same contract for kop-bench v1 documents.
std::vector<std::string> validate_bench_json(const std::string& text);

}  // namespace kop::telemetry
