#include "virgil/virgil.hpp"

#include <stdexcept>

#include "sim/racecheck.hpp"

namespace kop::virgil {

// Shared-access annotations follow the same discipline as komp's task
// pool: deque contents are guarded by the per-queue spinlocks (plain
// accesses -- the detector verifies the lock discipline), while
// stopping_, executed_ and the latch counter model the runtime's
// atomics (happens-before edges).

CountdownLatch::CountdownLatch(osal::Os& os, int count)
    : os_(&os), count_(count), gate_(os.make_wait_queue()) {
  if (count < 0) throw std::invalid_argument("CountdownLatch: count < 0");
}

void CountdownLatch::count_down() {
  os_->atomic_op(static_cast<int>(gate_->waiters()));
  sim::race::atomic_rmw(os_->engine(), &count_, "CountdownLatch::count_");
  if (count_ <= 0) throw std::logic_error("CountdownLatch: underflow");
  --count_;
  if (count_ == 0) gate_->notify_all();
}

void CountdownLatch::wait() {
  // Joins in CCK-generated code spin briefly, then sleep.
  sim::race::atomic_load(os_->engine(), &count_);
  while (count_ > 0) {
    gate_->wait(/*spin_ns=*/20 * sim::kMicrosecond);
    sim::race::atomic_load(os_->engine(), &count_);
  }
}

KernelVirgil::KernelVirgil(nautilus::NautilusKernel& kernel, int width)
    : kernel_(&kernel),
      width_(width > 0 ? std::min(width, kernel.machine().num_cpus)
                       : kernel.machine().num_cpus) {}

void KernelVirgil::submit(TaskFn task) {
  // Round-robin across the kernel's per-CPU task queues; the task
  // system's stealing handles imbalance.  The task system itself emits
  // the rt_task events (so raw enqueue() users are covered too).
  const int cpu = next_cpu_;
  next_cpu_ = (next_cpu_ + 1) % width_;
  kernel_->task_system().enqueue(std::move(task), cpu);
}

std::uint64_t KernelVirgil::executed() const {
  return kernel_->task_system().executed();
}

UserVirgil::UserVirgil(osal::Os& os, int workers, sim::Time dispatch_cost_ns)
    : os_(&os), dispatch_cost_ns_(dispatch_cost_ns) {
  if (workers <= 0) throw std::invalid_argument("UserVirgil: workers <= 0");
  queues_.resize(static_cast<std::size_t>(workers));
  for (auto& q : queues_) {
    q.lock = std::make_unique<osal::Spinlock>(os);
    q.idle = os.make_wait_queue();
  }
}

UserVirgil::~UserVirgil() = default;

void UserVirgil::start() {
  if (started_) throw std::logic_error("UserVirgil: started twice");
  started_ = true;
  sim::race::atomic_store(os_->engine(), &stopping_, "UserVirgil::stopping_");
  stopping_ = false;
  const int n = static_cast<int>(queues_.size());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.push_back(os_->spawn_thread(
        "virgil-user-" + std::to_string(i),
        [this, i]() { worker_loop(i); }, i % os_->machine().num_cpus));
  }
}

void UserVirgil::stop() {
  if (!started_) return;
  sim::race::atomic_store(os_->engine(), &stopping_, "UserVirgil::stopping_");
  stopping_ = true;
  for (auto& q : queues_) q.idle->notify_all();
  for (auto* t : threads_) os_->join_thread(t);
  threads_.clear();
  started_ = false;
}

void UserVirgil::submit(TaskFn task) {
  const int w = next_rr_;
  next_rr_ = (next_rr_ + 1) % static_cast<int>(queues_.size());
  auto& q = queues_[static_cast<std::size_t>(w)];
  q.lock->lock();
  sim::race::plain_write(os_->engine(), &q.tasks, "UserVirgil task deque");
  q.tasks.push_back(std::move(task));
  q.lock->unlock();
  os_->tools().emit([&](ompt::Tool& t) {
    t.on_rt_task_submit(ompt::TaskRuntimeKind::kUser, os_->engine().now(), w);
  });
  q.idle->notify_one();
}

bool UserVirgil::try_get(int index, TaskFn& out, bool* stolen) {
  const int n = static_cast<int>(queues_.size());
  for (int i = 0; i < n; ++i) {
    const int victim = (index + i) % n;
    auto& q = queues_[static_cast<std::size_t>(victim)];
    if (i == 0) {
      q.lock->lock();
    } else if (!q.lock->try_lock()) {
      continue;
    }
    sim::race::plain_read(os_->engine(), &q.tasks, "UserVirgil task deque");
    if (!q.tasks.empty()) {
      sim::race::plain_write(os_->engine(), &q.tasks, "UserVirgil task deque");
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      q.lock->unlock();
      *stolen = i != 0;
      return true;
    }
    q.lock->unlock();
  }
  return false;
}

void UserVirgil::worker_loop(int index) {
  for (;;) {
    TaskFn task;
    bool stolen = false;
    if (try_get(index, task, &stolen)) {
      if (stolen) {
        os_->counters().add_on(os_->current_cpu(),
                               telemetry::Counter::kTaskSteals);
      }
      os_->tools().emit([&](ompt::Tool& t) {
        t.on_rt_task_execute(ompt::TaskRuntimeKind::kUser,
                             ompt::Endpoint::kBegin, os_->engine().now(),
                             index, stolen);
      });
      os_->compute_ns(dispatch_cost_ns_);
      task();
      sim::race::atomic_rmw(os_->engine(), &executed_,
                            "UserVirgil::executed_");
      ++executed_;
      os_->tools().emit([&](ompt::Tool& t) {
        t.on_rt_task_execute(ompt::TaskRuntimeKind::kUser,
                             ompt::Endpoint::kEnd, os_->engine().now(),
                             index, stolen);
      });
      continue;
    }
    sim::race::atomic_load(os_->engine(), &stopping_);
    if (stopping_) return;
    // Same lost-wakeup hazard as the kernel workers: try_get yields
    // inside its locks, so recheck before parking.  The unlocked
    // emptiness peek models an atomic size probe, not a deque access.
    sim::race::atomic_load(os_->engine(),
                           &queues_[static_cast<std::size_t>(index)].tasks);
    if (!queues_[static_cast<std::size_t>(index)].tasks.empty()) continue;
    // User-level workers spin a little, then futex-sleep: waking them
    // costs the full Linux wake path -- one of the structural costs
    // kernel VIRGIL avoids.
    queues_[static_cast<std::size_t>(index)].idle->wait(
        /*spin_ns=*/5 * sim::kMicrosecond);
  }
}

}  // namespace kop::virgil
