// VIRGIL: the custom task-based runtime CCK-compiled code targets
// instead of libomp (paper §2.1, §5).
//
// Two variants, as in the paper:
//  * KernelVirgil -- "a thin veneer over the kernel's task framework":
//    submit() forwards to nautilus::TaskSystem (the SoftIRQ-like
//    per-CPU queues).  ~550 lines of C in the paper.
//  * UserVirgil   -- the user-level version "that uses C++17
//    abstractions to build on top of C++ threads and C++
//    synchronization (including futex) on Linux".  ~620 lines of C++.
//
// VIRGIL is deliberately tiny: it only executes *ready* independent
// tasks.  Dependence checking, joins, and landing tasks are generated
// by the compiler (§5.3-5.4); the runtime is unaware of them.  The
// CountdownLatch here is the primitive that compiler-generated join
// code uses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "nautilus/kernel.hpp"
#include "osal/sync.hpp"

namespace kop::virgil {

using TaskFn = std::function<void()>;

class Virgil {
 public:
  virtual ~Virgil() = default;
  /// Hand a ready task to the runtime.  May be called from any sim
  /// thread, including from inside a running task.
  virtual void submit(TaskFn task) = 0;
  /// Tasks executed so far.
  virtual std::uint64_t executed() const = 0;
  /// Number of execution lanes (CPUs / workers).
  virtual int width() const = 0;
  virtual const char* flavor() const = 0;
};

/// Completion counter used by compiler-generated landing/join code.
class CountdownLatch {
 public:
  CountdownLatch(osal::Os& os, int count);
  void count_down();
  /// Block until the count reaches zero.
  void wait();
  int remaining() const { return count_; }

 private:
  osal::Os* os_;
  int count_;
  std::unique_ptr<osal::WaitQueue> gate_;
};

/// Kernel-level VIRGIL: forwards to the Nautilus task system.
class KernelVirgil final : public Virgil {
 public:
  /// The kernel's task system must be started by the caller (it is
  /// part of the kernel, not of VIRGIL).  `width` restricts submission
  /// to the first `width` CPUs (<= 0: all CPUs).
  explicit KernelVirgil(nautilus::NautilusKernel& kernel, int width = 0);

  void submit(TaskFn task) override;
  std::uint64_t executed() const override;
  int width() const override { return width_; }
  const char* flavor() const override { return "virgil-kernel"; }

 private:
  nautilus::NautilusKernel* kernel_;
  int width_;
  int next_cpu_ = 0;
};

/// User-level VIRGIL: its own worker pool over OS threads + futex-like
/// sleeping (the Os passed in should be the Linux model).
class UserVirgil final : public Virgil {
 public:
  UserVirgil(osal::Os& os, int workers,
             sim::Time dispatch_cost_ns = 600);
  ~UserVirgil() override;

  void start();
  void stop();

  void submit(TaskFn task) override;
  std::uint64_t executed() const override { return executed_; }
  int width() const override { return static_cast<int>(queues_.size()); }
  const char* flavor() const override { return "virgil-user"; }

 private:
  struct WorkerQueue {
    std::deque<TaskFn> tasks;
    std::unique_ptr<osal::Spinlock> lock;
    std::unique_ptr<osal::WaitQueue> idle;
  };

  void worker_loop(int index);
  bool try_get(int index, TaskFn& out, bool* stolen);

  osal::Os* os_;
  sim::Time dispatch_cost_ns_;
  std::vector<WorkerQueue> queues_;
  std::vector<osal::Thread*> threads_;
  bool started_ = false;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
  int next_rr_ = 0;
};

}  // namespace kop::virgil
