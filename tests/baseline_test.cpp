// Baseline shape-diff: compare_shapes must stay quiet when nothing
// moved, and flag each of the three shape regressions (geomean drift,
// win/loss flips, crossover moves) independently; the end-to-end path
// -- record a cache, index it fingerprint-agnostically, perturb the
// fresh results the way a cost-model edit would -- must produce a
// failing verdict.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/baseline.hpp"
#include "harness/jobs/runner.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
namespace jobs = kop::harness::jobs;

jobs::ShapeCell cell(const std::string& group, const std::string& x,
                     double baseline, double fresh) {
  jobs::ShapeCell c;
  c.figure = "fig09";
  c.series = "rtk";
  c.group = group;
  c.x_label = x;
  c.baseline_gain = baseline;
  c.fresh_gain = fresh;
  return c;
}

TEST(CompareShapes, QuietWhenNothingMoved) {
  const std::vector<jobs::ShapeCell> cells = {
      cell("BT-B", "1", 1.9, 1.9), cell("BT-B", "8", 1.2, 1.2),
      cell("FT-B", "1", 1.1, 1.1), cell("FT-B", "8", 0.9, 0.9)};
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_TRUE(v.series[0].ok);
  EXPECT_DOUBLE_EQ(v.series[0].drift, 0.0);
  EXPECT_EQ(v.series[0].flips, 0);
  EXPECT_EQ(v.series[0].crossover_moves, 0);
  EXPECT_TRUE(v.ok());
}

TEST(CompareShapes, SmallDriftWithinToleranceIsOk) {
  // 2% geomean movement under the default 5% tolerance, same side of
  // 1.0 everywhere: benign recalibration.
  const std::vector<jobs::ShapeCell> cells = {
      cell("BT-B", "1", 1.9, 1.9 * 1.02), cell("BT-B", "8", 1.2, 1.2 * 1.02)};
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_TRUE(v.series[0].ok) << v.text({});
  EXPECT_GT(v.series[0].drift, 0.0);
}

TEST(CompareShapes, FlagsGeomeanDrift) {
  const std::vector<jobs::ShapeCell> cells = {
      cell("BT-B", "1", 1.9, 1.9 * 1.2), cell("BT-B", "8", 1.2, 1.2 * 1.2)};
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_FALSE(v.series[0].ok);
  EXPECT_NEAR(v.series[0].drift, 0.2, 1e-9);
  EXPECT_FALSE(v.ok());
}

TEST(CompareShapes, FlagsWinLossFlip) {
  // Geomean barely moves but one cell crossed 1.0: a win became a loss.
  const std::vector<jobs::ShapeCell> cells = {
      cell("BT-B", "1", 1.04, 0.97), cell("BT-B", "8", 1.0, 1.06)};
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_LE(v.series[0].drift, 0.05);
  EXPECT_EQ(v.series[0].flips, 1);
  EXPECT_FALSE(v.series[0].ok);
}

TEST(CompareShapes, FlagsCrossoverMove) {
  // BT-B used to start losing at the third x; now at the second.  Every
  // individual cell stays on the same side of its old value's
  // neighborhood -- the *position* of the crossover is what moved.
  const std::vector<jobs::ShapeCell> cells = {
      cell("BT-B", "1", 1.30, 1.30), cell("BT-B", "4", 1.05, 0.95),
      cell("BT-B", "8", 0.90, 0.90)};
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_EQ(v.series[0].crossover_moves, 1);
  EXPECT_FALSE(v.series[0].ok);
}

TEST(CompareShapes, SeriesJudgedIndependently) {
  std::vector<jobs::ShapeCell> cells = {cell("BT-B", "1", 1.9, 1.9)};
  jobs::ShapeCell bad = cell("BT-B", "1", 1.9, 0.5);
  bad.series = "pik";
  cells.push_back(bad);
  const auto v = jobs::compare_shapes(cells, {});
  ASSERT_EQ(v.series.size(), 2u);
  EXPECT_TRUE(v.series[0].ok);
  EXPECT_FALSE(v.series[1].ok);
  EXPECT_FALSE(v.shapes_ok());
}

class BaselineEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process + case: ctest -j runs cases concurrently.
    dir_ = (fs::temp_directory_path() /
            ("kop_baseline_cache_" + std::to_string(getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);

    suite_ = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
    suite_.resize(2);
    paths_ = {PathKind::kRtk};
    scales_ = {1, 4};
    points_ = kop::harness::enumerate_nas_normalized("phi", paths_, scales_,
                                                     suite_);

    jobs::JobOptions jopts;
    jopts.cache_dir = dir_;
    jobs::JobRunner runner(jopts);
    results_ = runner.run(points_);
    jobs::require_ok(points_, results_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  jobs::BaselineVerdict verdict(const std::vector<jobs::PointResult>& fresh) {
    const jobs::CacheIndex index(dir_);
    std::vector<jobs::PointResult> base(points_.size());
    std::vector<bool> have(points_.size(), false);
    for (std::size_t i = 0; i < points_.size(); ++i)
      have[i] = index.load(points_[i], &base[i]);
    std::vector<std::string> missing;
    auto cells = jobs::nas_shape_cells("fig09", "phi", paths_, scales_,
                                       suite_, base, have, fresh, &missing);
    auto v = jobs::compare_shapes(std::move(cells), {});
    v.incomparable = std::move(missing);
    return v;
  }

  std::string dir_;
  std::vector<kop::nas::BenchmarkSpec> suite_;
  std::vector<PathKind> paths_;
  std::vector<int> scales_;
  std::vector<jobs::PointSpec> points_;
  std::vector<jobs::PointResult> results_;
};

TEST_F(BaselineEndToEndTest, CacheIndexLoadsEveryRecordedPoint) {
  const jobs::CacheIndex index(dir_);
  EXPECT_EQ(index.size(), points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    jobs::PointResult r;
    ASSERT_TRUE(index.load(points_[i], &r)) << points_[i].label();
    EXPECT_DOUBLE_EQ(r.metrics.timed_seconds,
                     results_[i].metrics.timed_seconds);
  }
  // A point never recorded misses cleanly.
  jobs::PointSpec other = points_[0];
  other.threads = 100;
  jobs::PointResult r;
  EXPECT_FALSE(index.load(other, &r));
}

TEST_F(BaselineEndToEndTest, CacheIndexToleratesMissingDirectory) {
  const jobs::CacheIndex index(dir_ + "-does-not-exist");
  EXPECT_EQ(index.size(), 0u);
}

TEST_F(BaselineEndToEndTest, CleanRerunPassesQuietly) {
  const auto v = verdict(results_);
  EXPECT_TRUE(v.ok()) << v.text({});
  EXPECT_TRUE(v.incomparable.empty());
  for (const auto& s : v.series) EXPECT_DOUBLE_EQ(s.drift, 0.0);
}

TEST_F(BaselineEndToEndTest, FlagsInjectedCostRegression) {
  // The perturbation a bad hw/cost_params.hpp edit would cause: the RTK
  // path got 30% slower everywhere while Linux stayed put.
  auto fresh = results_;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].path == PathKind::kRtk)
      fresh[i].metrics.timed_seconds *= 1.3;
  }
  const auto v = verdict(fresh);
  EXPECT_FALSE(v.ok());
  ASSERT_EQ(v.series.size(), 1u);
  EXPECT_GT(v.series[0].drift, 0.05);
  const std::string json = v.json({});
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

}  // namespace
