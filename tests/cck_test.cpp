// Tests for the CCK compiler: PDG construction + OpenMP-metadata
// pruning, SCCs, transforms, technique selection (incl. the object-
// privatization limitation), the chunker, codegen, and execution.
#include <gtest/gtest.h>

#include "cck/codegen.hpp"
#include "cck/pdg.hpp"
#include "cck/program.hpp"
#include "cck/transforms.hpp"
#include "nautilus/kernel.hpp"
#include "virgil/virgil.hpp"

namespace kop::cck {
namespace {

Function fn_with(std::vector<Var> vars) {
  Function fn;
  fn.name = "main";
  for (auto& v : vars) fn.declare(v);
  return fn;
}

Loop doall_loop(std::int64_t trip = 1000) {
  Loop l;
  l.name = "doall";
  l.trip = trip;
  l.omp.parallel_for = true;
  Stmt s;
  s.label = "body";
  s.est_cost_ns = 1000;
  s.accesses = {read("a"), write("a")};
  l.body.push_back(s);
  l.exec.per_iter_ns = 1000;
  return l;
}

TEST(Pdg, ElementwiseAccessesHaveNoCarriedDeps) {
  Function fn = fn_with({{"a", 1 << 20, true}});
  Loop l = doall_loop();
  const Pdg pdg = Pdg::build(fn, l, true);
  EXPECT_FALSE(pdg.has_loop_carried_dep());
}

TEST(Pdg, StencilAccessIsCarried) {
  Function fn = fn_with({{"a", 1 << 20, true}});
  Loop l = doall_loop();
  l.body[0].accesses.push_back(carried_read("a"));  // a[i-1]
  const Pdg pdg = Pdg::build(fn, l, true);
  EXPECT_TRUE(pdg.has_loop_carried_dep());
  EXPECT_EQ(pdg.carried_vars(), std::vector<std::string>{"a"});
}

TEST(Pdg, SharedScalarWriteIsCarriedUnlessPrivatized) {
  Function fn = fn_with({{"a", 1 << 20, true}, {"tmp", 8, false}});
  Loop l = doall_loop();
  l.body[0].accesses.push_back(write("tmp", /*per_iter=*/false));
  l.body[0].accesses.push_back(read("tmp", /*per_iter=*/false));

  const Pdg without = Pdg::build(fn, l, true);
  EXPECT_TRUE(without.has_loop_carried_dep());

  l.omp.private_vars.push_back("tmp");  // scalar: AutoMP privatizes fine
  const Pdg with = Pdg::build(fn, l, true);
  EXPECT_FALSE(with.has_loop_carried_dep());
  EXPECT_TRUE(with.unsupported_privatization().empty());
}

TEST(Pdg, ObjectPrivatizationIsUnsupported) {
  Function fn = fn_with({{"a", 1 << 20, true}, {"work", 1 << 16, true}});
  Loop l = doall_loop();
  l.body[0].accesses.push_back(write("work", false));
  l.body[0].accesses.push_back(read("work", false));
  l.omp.private_vars.push_back("work");  // object: cannot privatize
  const Pdg pdg = Pdg::build(fn, l, true);
  EXPECT_TRUE(pdg.has_loop_carried_dep());
  ASSERT_EQ(pdg.unsupported_privatization().size(), 1u);
  EXPECT_EQ(pdg.unsupported_privatization()[0], "work");
}

TEST(Pdg, MetadataOffKeepsConservativeDeps) {
  Function fn = fn_with({{"a", 1 << 20, true}, {"sum", 8, false}});
  Loop l = doall_loop();
  l.body[0].accesses.push_back(write("sum", false));
  l.omp.reduction_vars.push_back("sum");
  EXPECT_FALSE(Pdg::build(fn, l, true).has_loop_carried_dep());
  EXPECT_TRUE(Pdg::build(fn, l, false).has_loop_carried_dep());
}

TEST(Pdg, SccsTopologicalOrder) {
  // s0 -> s1 <-> s2 -> s3 : three SCCs, {s1,s2} in the middle.
  Function fn = fn_with({{"x", 8, false}, {"y", 8, false}, {"z", 8, false},
                         {"w", 8, false}});
  Loop l;
  l.name = "pipe";
  l.trip = 100;
  Stmt s0, s1, s2, s3;
  s0.label = "s0";
  s0.accesses = {write("x", false)};
  s1.label = "s1";
  s1.accesses = {read("x", false), write("y", false), read("z", false)};
  s2.label = "s2";
  s2.accesses = {read("y", false), write("z", false)};
  s3.label = "s3";
  s3.accesses = {read("z", false), write("w", false)};
  l.body = {s0, s1, s2, s3};
  const Pdg pdg = Pdg::build(fn, l, false);
  const auto sccs = pdg.sccs();
  ASSERT_EQ(sccs.size(), 3u);
  EXPECT_EQ(sccs[0], std::vector<int>{0});
  EXPECT_EQ(sccs[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(sccs[2], std::vector<int>{3});
}

TEST(Transforms, InlineMergesCallees) {
  Module m;
  Function main_fn;
  main_fn.name = "main";
  main_fn.items.push_back(Item::make_serial(100));
  main_fn.items.push_back(Item::make_call("helper"));
  Function helper;
  helper.name = "helper";
  helper.declare({"h", 8, false});
  helper.items.push_back(Item::make_loop(doall_loop()));
  m.functions["main"] = main_fn;
  m.functions["helper"] = helper;

  const Function flat = inline_calls(m);
  EXPECT_EQ(flat.items.size(), 2u);
  EXPECT_EQ(flat.items[1].kind, Item::Kind::kLoop);
  EXPECT_NE(flat.find_var("h"), nullptr);
}

TEST(Transforms, InlineDetectsRecursion) {
  Module m;
  Function main_fn;
  main_fn.name = "main";
  main_fn.items.push_back(Item::make_call("main"));
  m.functions["main"] = main_fn;
  EXPECT_THROW(inline_calls(m), std::logic_error);
}

TEST(Transforms, DistributionSplitsSequentialScc) {
  // One parallel statement + one carried-recurrence statement on a
  // different variable: distribution should split them.
  Function fn = fn_with({{"a", 1 << 20, true}, {"acc", 8, false}});
  Loop l;
  l.name = "mix";
  l.trip = 1000;
  Stmt par;
  par.label = "par";
  par.est_cost_ns = 900;
  par.accesses = {read("a"), write("a")};
  Stmt seq;
  seq.label = "seq";
  seq.est_cost_ns = 100;
  seq.accesses = {carried_write("acc"), carried_read("acc")};
  l.body = {par, seq};
  l.exec.per_iter_ns = 1000;

  const auto pieces = distribute_loop(fn, l, true);
  ASSERT_EQ(pieces.size(), 2u);
  // Payload split proportionally to estimated cost.
  EXPECT_NEAR(pieces[0].exec.per_iter_ns + pieces[1].exec.per_iter_ns, 1000,
              1e-6);
}

TEST(Transforms, FusionMergesAdjacentDoall) {
  Function fn = fn_with({{"a", 1 << 20, true}});
  Loop l1 = doall_loop();
  Loop l2 = doall_loop();
  l2.name = "doall2";
  auto fused = fuse_loops(fn, {l1, l2}, true);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].body.size(), 2u);
  EXPECT_NEAR(fused[0].exec.per_iter_ns, 2000, 1e-9);
}

TEST(Transforms, FusionRefusesCarriedLoops) {
  Function fn = fn_with({{"a", 1 << 20, true}});
  Loop l1 = doall_loop();
  Loop l2 = doall_loop();
  l2.body[0].accesses.push_back(carried_write("a"));
  const auto fused = fuse_loops(fn, {l1, l2}, true);
  EXPECT_EQ(fused.size(), 2u);
}

TEST(Parallelizer, SelectsDoallAndChunksByLatency) {
  Function fn = fn_with({{"a", 1 << 20, true}});
  Parallelizer par(ParallelizerOptions{true, 50'000.0, 8});
  const LoopPlan plan = par.plan(fn, doall_loop(10'000));
  EXPECT_EQ(plan.tech, Technique::kDoall);
  // 1us iterations, 50us target -> ~50-iteration chunks.
  EXPECT_NEAR(static_cast<double>(plan.chunk), 50.0, 1.0);
}

TEST(Parallelizer, ChunkerClampsForBalance) {
  Parallelizer par(ParallelizerOptions{true, 50'000.0, 8});
  // Huge iterations: chunk would be <1, clamps to 1.
  EXPECT_EQ(par.choose_chunk(1e9, 100), 1);
  // Tiny iterations: chunk clamps so >= 4 tasks per lane exist.
  EXPECT_EQ(par.choose_chunk(1.0, 3200), 100);
}

TEST(Parallelizer, PrivatizationLimitationSequentializes) {
  Function fn = fn_with({{"a", 1 << 20, true}, {"work", 1 << 16, true}});
  Loop l = doall_loop();
  l.body[0].accesses.push_back(write("work", false));
  l.omp.private_vars.push_back("work");
  Parallelizer par(ParallelizerOptions{true, 50'000.0, 8});
  const LoopPlan plan = par.plan(fn, l);
  EXPECT_EQ(plan.tech, Technique::kSequential);
  ASSERT_FALSE(plan.notes.empty());
  EXPECT_NE(plan.notes[0].find("privatization"), std::string::npos);
}

TEST(Parallelizer, PipelineForMultiSccLoop) {
  Function fn = fn_with(
      {{"a", 1 << 20, true}, {"acc", 8, false}});
  Loop l;
  l.name = "pipe";
  l.trip = 1000;
  Stmt par;
  par.label = "par";
  par.est_cost_ns = 800;
  par.accesses = {read("a"), write("a")};
  Stmt seq;
  seq.label = "seq";
  seq.est_cost_ns = 200;
  seq.accesses = {carried_write("acc")};
  l.body = {par, seq};
  Parallelizer p(ParallelizerOptions{true, 50'000.0, 8});
  const LoopPlan plan = p.plan(fn, l);
  EXPECT_TRUE(plan.tech == Technique::kDswp || plan.tech == Technique::kHelix);
  EXPECT_NEAR(plan.parallel_fraction, 0.8, 1e-6);
}

TEST(Codegen, ReportSummarizesTechniques) {
  Module m;
  Function fn = fn_with({{"a", 1 << 20, true}, {"work", 1 << 16, true}});
  fn.items.push_back(Item::make_serial(1000));
  fn.items.push_back(Item::make_loop(doall_loop()));
  Loop blocked = doall_loop();
  blocked.name = "blocked";
  blocked.body[0].accesses.push_back(write("work", false));
  blocked.omp.private_vars.push_back("work");
  fn.items.push_back(Item::make_loop(blocked));
  m.functions["main"] = fn;

  CompilerOptions opts;
  opts.width = 8;
  const CompiledProgram prog = Compiler(opts).compile(m);
  EXPECT_EQ(prog.report.doall_loops, 1);
  EXPECT_EQ(prog.report.sequential_loops, 1);
  EXPECT_GT(prog.report.parallel_work_fraction, 0.4);
  EXPECT_LT(prog.report.parallel_work_fraction, 0.6);
  EXPECT_NE(prog.report.to_string().find("DOALL"), std::string::npos);
  ASSERT_EQ(prog.phases.size(), 3u);
  EXPECT_EQ(prog.phases[0].kind, Phase::Kind::kSerial);
  EXPECT_EQ(prog.phases[1].kind, Phase::Kind::kParallelLoop);
  EXPECT_EQ(prog.phases[2].kind, Phase::Kind::kSequentialLoop);
}

TEST(ChunkWork, SkewRampIntegratesCorrectly) {
  Loop l = doall_loop(1000);
  l.exec.skew = 0.5;
  l.exec.per_iter_ns = 1000;
  // First chunk is cheap (mult ~ 0.5), last chunk expensive (~1.5).
  const auto first = chunk_work(l, 0, 100);
  const auto last = chunk_work(l, 900, 1000);
  EXPECT_LT(first.cpu_ns, last.cpu_ns);
  // Whole loop integrates to trip * per_iter.
  const auto whole = chunk_work(l, 0, 1000);
  EXPECT_NEAR(static_cast<double>(whole.cpu_ns), 1000.0 * 1000.0, 1000.0);
}

TEST(Program, RunsDoallOnKernelVirgil) {
  sim::Engine eng(9);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Module m;
  Function fn = fn_with({{"a", 1 << 20, true}});
  fn.items.push_back(Item::make_loop(doall_loop(512)));
  m.functions["main"] = fn;
  CompilerOptions opts;
  opts.width = 8;
  const CompiledProgram prog = Compiler(opts).compile(m);

  sim::Time elapsed = 0;
  nk.spawn_thread(
      "main",
      [&] {
        nk.task_system().start(8);
        virgil::KernelVirgil vg(nk, 8);
        ProgramRunner runner(nk, vg);
        elapsed = runner.run(prog);
        nk.task_system().stop();
      },
      0);
  eng.run();
  // 512 x 1us of work over 8 lanes: > 64us (ideal), well under 512us
  // (serial).
  EXPECT_GT(elapsed, 64 * sim::kMicrosecond);
  EXPECT_LT(elapsed, 400 * sim::kMicrosecond);
}

}  // namespace
}  // namespace kop::cck

// Appended coverage: PDG DOT export.
namespace kop::cck {
namespace {

TEST(Pdg, DotExportNamesStatementsAndDeps) {
  Function fn = fn_with({{"a", 1 << 20, true}, {"acc", 8, false}});
  Loop l;
  l.name = "dotted";
  l.trip = 10;
  Stmt s1;
  s1.label = "produce";
  s1.accesses = {write("a")};
  Stmt s2;
  s2.label = "consume";
  s2.accesses = {read("a"), carried_write("acc")};
  l.body = {s1, s2};
  const Pdg pdg = Pdg::build(fn, l, false);
  const std::string dot = pdg.to_dot(l);
  EXPECT_NE(dot.find("digraph \"dotted\""), std::string::npos);
  EXPECT_NE(dot.find("produce"), std::string::npos);
  EXPECT_NE(dot.find("consume"), std::string::npos);
  EXPECT_NE(dot.find("flow:a"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // carried acc
}

}  // namespace
}  // namespace kop::cck
