// Checkpoint (COW fork at the warmup/measurement boundary) tests.
//
// The load-bearing property: a point's measurement phase run in a
// forked child of a warm prefix is bit-for-bit the run it would have
// been cold -- same engine dispatch digest, same encoded metrics.
// That is what lets --checkpoint sweeps serve results into the same
// content-addressed cache that cold runs populate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/forkrun.hpp"
#include "harness/jobs/point.hpp"
#include "nas/specs.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"

namespace {

using kop::harness::RunHooks;
using kop::harness::RunMetrics;
using kop::harness::SnapshotCtl;
namespace jobs = kop::harness::jobs;
namespace sim = kop::sim;

jobs::PointSpec small_point(int timesteps = 1) {
  jobs::PointSpec p;
  p.kind = jobs::PointSpec::Kind::kNas;
  p.machine = "phi";
  p.path = kop::core::PathKind::kRtk;
  p.threads = 2;
  auto scaled =
      kop::harness::scale_suite({kop::nas::by_name("EP")}, 0.05, timesteps);
  p.nas = scaled[0];
  return p;
}

// Run the point under one engine schedule, optionally forking at the
// snapshot (the child returns with *is_child set and must child_exit).
std::uint64_t run_digest(const jobs::PointSpec& spec, sim::SchedPolicy pol,
                         std::uint64_t seed, sim::Checkpoint* ckpt,
                         bool* is_child) {
  std::uint64_t digest = 0;
  RunHooks hooks;
  hooks.on_done = [&digest](kop::core::Stack& s) {
    digest = s.engine().stats().dispatch_digest;
  };
  hooks.at_snapshot = [&spec, ckpt, is_child](kop::core::Stack& s,
                                              SnapshotCtl&) {
    if (ckpt != nullptr && ckpt->fork_child()) *is_child = true;
    jobs::apply_point_scales(s, spec.cost_scales);
  };
  kop::core::StackConfig cfg = spec.stack_config();
  cfg.sched.policy = pol;
  cfg.sched.seed = seed;
  RunMetrics m;
  kop::harness::run_nas(cfg, spec.nas, &m, hooks);
  return digest;
}

TEST(Checkpoint, PipePayloadRoundtrip) {
  if (!sim::Checkpoint::supported()) GTEST_SKIP() << "fork unsafe here";
  sim::Checkpoint ckpt;
  if (ckpt.fork_child()) ckpt.child_exit("payload across the pipe", 0);
  ASSERT_EQ(ckpt.children(), 1u);
  const sim::Checkpoint::Harvest h = ckpt.harvest(0);
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(h.exit_code, 0);
  EXPECT_EQ(h.payload, "payload across the pipe");
}

TEST(Checkpoint, NonzeroChildExitIsNotOk) {
  if (!sim::Checkpoint::supported()) GTEST_SKIP() << "fork unsafe here";
  sim::Checkpoint ckpt;
  if (ckpt.fork_child()) ckpt.child_exit("partial", 3);
  const sim::Checkpoint::Harvest h = ckpt.harvest(0);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.exit_code, 3);
  EXPECT_EQ(h.payload, "partial");
}

TEST(Checkpoint, HarvestsChildrenInAnyOrder) {
  if (!sim::Checkpoint::supported()) GTEST_SKIP() << "fork unsafe here";
  sim::Checkpoint ckpt;
  for (int i = 0; i < 3; ++i) {
    if (ckpt.fork_child()) ckpt.child_exit("child " + std::to_string(i), 0);
  }
  ASSERT_EQ(ckpt.children(), 3u);
  for (std::size_t i : {2u, 0u, 1u}) {
    const sim::Checkpoint::Harvest h = ckpt.harvest(i);
    EXPECT_TRUE(h.ok());
    EXPECT_EQ(h.payload, "child " + std::to_string(i));
  }
}

// The acceptance-criterion determinism matrix: a forked measurement
// phase replays the cold run's dispatch digest exactly, for every
// scheduler policy at several pinned seeds, in both the forked child
// and the parent that continues past the fork.
TEST(Checkpoint, ForkedMeasurementMatchesColdDigest) {
  if (!sim::Checkpoint::supported()) GTEST_SKIP() << "fork unsafe here";
  const jobs::PointSpec spec = small_point();
  for (sim::SchedPolicy pol :
       {sim::SchedPolicy::kFifo, sim::SchedPolicy::kRandom,
        sim::SchedPolicy::kPct}) {
    for (std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{42},
                               std::uint64_t{20260809}}) {
      const std::uint64_t cold = run_digest(spec, pol, seed, nullptr, nullptr);
      sim::Checkpoint ckpt;
      bool is_child = false;
      const std::uint64_t warm = run_digest(spec, pol, seed, &ckpt, &is_child);
      if (is_child) ckpt.child_exit(jobs::hex16(warm), 0);
      ASSERT_EQ(ckpt.children(), 1u) << "snapshot hook never fired";
      EXPECT_EQ(warm, cold)
          << "parent diverged: " << sim::sched_policy_name(pol)
          << " seed " << seed;
      const sim::Checkpoint::Harvest h = ckpt.harvest(0);
      ASSERT_TRUE(h.ok()) << "child exit " << h.exit_code;
      EXPECT_EQ(h.payload, jobs::hex16(cold))
          << "child diverged: " << sim::sched_policy_name(pol)
          << " seed " << seed;
    }
  }
}

// run_prefix_group (the JobRunner's checkpoint path) returns, for every
// member of a prefix-sharing group, the byte-identical encoded document
// a cold run_point of that member produces -- including members whose
// suffix carries late-binding cost scales.
TEST(Checkpoint, PrefixGroupByteIdenticalToColdRuns) {
  std::vector<jobs::PointSpec> specs;
  for (int ts : {1, 2, 3}) specs.push_back(small_point(ts));
  jobs::PointSpec scaled = small_point(2);
  scaled.cost_scales.push_back({"nautilus.context_switch_ns", 2.0});
  specs.push_back(scaled);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    ASSERT_EQ(specs[i].prefix_hash(), specs[0].prefix_hash())
        << "test premise broken: members must share a prefix";
    ASSERT_NE(specs[i].content_hash(), specs[0].content_hash())
        << "test premise broken: members must be distinct points";
  }
  const std::vector<jobs::PointResult> group = jobs::run_prefix_group(specs);
  ASSERT_EQ(group.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_FALSE(group[i].failed) << group[i].error;
    const jobs::PointResult cold = jobs::run_point(specs[i]);
    EXPECT_EQ(jobs::ResultCache::encode(specs[i], group[i]),
              jobs::ResultCache::encode(specs[i], cold))
        << "member " << i << " (" << specs[i].label() << ")";
  }
}

// Satellite guard: the fiber guard page must survive the fork (the
// child asserts PROT_NONE before running anything; a lost guard page
// exits with kGuardLostExit instead of corrupting the measurement).
// Exercise it at a non-default fiber stack size.
TEST(Checkpoint, GuardPageSurvivesForkAtCustomStackSize) {
  if (!sim::Checkpoint::supported()) GTEST_SKIP() << "fork unsafe here";
  jobs::PointSpec spec = small_point();
  std::uint64_t cold = 0, warm = 0;
  {
    sim::Checkpoint ckpt;
    bool is_child = false;
    RunHooks hooks;
    hooks.on_boot = [](kop::core::Stack& s) {
      s.engine().set_fiber_stack_bytes(512 * 1024);
    };
    hooks.on_done = [&warm](kop::core::Stack& s) {
      warm = s.engine().stats().dispatch_digest;
    };
    hooks.at_snapshot = [&ckpt, &is_child](kop::core::Stack&, SnapshotCtl&) {
      if (ckpt.fork_child()) is_child = true;
    };
    RunMetrics m;
    kop::harness::run_nas(spec.stack_config(), spec.nas, &m, hooks);
    if (is_child) ckpt.child_exit(jobs::hex16(warm), 0);
    const sim::Checkpoint::Harvest h = ckpt.harvest(0);
    ASSERT_NE(h.exit_code, sim::Checkpoint::kGuardLostExit)
        << "guard page lost across fork";
    ASSERT_TRUE(h.ok());
    RunHooks cold_hooks;
    cold_hooks.on_boot = [](kop::core::Stack& s) {
      s.engine().set_fiber_stack_bytes(512 * 1024);
    };
    cold_hooks.on_done = [&cold](kop::core::Stack& s) {
      cold = s.engine().stats().dispatch_digest;
    };
    RunMetrics mc;
    kop::harness::run_nas(spec.stack_config(), spec.nas, &mc, cold_hooks);
    EXPECT_EQ(h.payload, jobs::hex16(cold));
    EXPECT_EQ(warm, cold);
  }
}

// KOP_FIBER_STACK_KB seeds every subsequently constructed engine; the
// explicit knob overrides it, and absurd values fall back to the
// compiled-in default rather than failing the run.
TEST(Checkpoint, FiberStackSizeEnvKnob) {
  ::setenv("KOP_FIBER_STACK_KB", "1024", 1);
  {
    sim::Engine e;
    EXPECT_EQ(e.fiber_stack_bytes(), 1024u * 1024u);
    e.set_fiber_stack_bytes(256 * 1024);
    EXPECT_EQ(e.fiber_stack_bytes(), 256u * 1024u);
  }
  ::setenv("KOP_FIBER_STACK_KB", "1", 1);  // below the 16 KiB floor
  {
    sim::Engine e;
    EXPECT_EQ(e.fiber_stack_bytes(), sim::Fiber::kDefaultStackBytes);
  }
  ::unsetenv("KOP_FIBER_STACK_KB");
}

}  // namespace
