// Work-stealing point dispatch (--shard-claim): the claim directory
// must grant each point to exactly one worker (even under concurrent
// claiming), the full three-worker workflow must cover the sweep
// exactly once, and the merged worker caches must replay the figure
// byte-identically -- the same contract the static --shard partition
// gives, without its load imbalance.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/claim.hpp"
#include "harness/jobs/merge.hpp"
#include "harness/jobs/runner.hpp"
#include "harness/jobs/shard.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
using kop::harness::MetricsSink;
namespace jobs = kop::harness::jobs;

class ClaimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("kop_claim_" + std::to_string(getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string dir(const std::string& name) {
    const fs::path p = root_ / name;
    return p.string();
  }

  fs::path root_;
};

jobs::PointSpec tiny_point(int threads) {
  jobs::PointSpec p;
  p.kind = jobs::PointSpec::Kind::kNas;
  p.machine = "phi";
  p.path = PathKind::kRtk;
  p.threads = threads;
  p.nas = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2)[0];
  return p;
}

TEST_F(ClaimTest, FirstClaimWinsSecondLoses) {
  jobs::ClaimDir claims(dir("claims"));
  const auto p = tiny_point(1);
  EXPECT_TRUE(claims.try_claim(p));
  EXPECT_FALSE(claims.try_claim(p));
  // A different point is an independent claim.
  EXPECT_TRUE(claims.try_claim(tiny_point(2)));
  // The claim file is named after the cache entry key.
  EXPECT_TRUE(fs::exists(fs::path(claims.dir()) /
                         ("kop-" + jobs::hex16(jobs::ResultCache::key(p)) +
                          ".claim")));
}

TEST_F(ClaimTest, AuditFindsStrandedClaims) {
  jobs::ClaimDir claims(dir("claims"));
  fs::create_directories(dir("cacheA"));
  fs::create_directories(dir("cacheB"));

  // Three claimed points; only two have a cache entry somewhere -- the
  // third claimer "crashed" between claiming and storing.
  const auto p1 = tiny_point(1), p2 = tiny_point(2), p3 = tiny_point(3);
  ASSERT_TRUE(claims.try_claim(p1));
  ASSERT_TRUE(claims.try_claim(p2));
  ASSERT_TRUE(claims.try_claim(p3));
  auto entry_name = [](const jobs::PointSpec& p) {
    return "kop-" + jobs::hex16(jobs::ResultCache::key(p)) + ".json";
  };
  // The audit is existence-only (kop_merge validates contents), so
  // placeholder entries are enough here.
  std::ofstream(dir("cacheA") + "/" + entry_name(p1)) << "{}";
  std::ofstream(dir("cacheB") + "/" + entry_name(p2)) << "{}";

  auto audit = jobs::audit_claims(dir("claims"), {dir("cacheA"), dir("cacheB")});
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.claims, 3u);
  EXPECT_EQ(audit.covered, 2u);
  ASSERT_EQ(audit.stranded.size(), 1u);
  EXPECT_EQ(audit.stranded[0].entry, entry_name(p3));
  // The claim's recorded owner ("host:pid") surfaces in the report.
  EXPECT_NE(audit.stranded[0].owner.find(':'), std::string::npos);
  EXPECT_NE(audit.text().find("STRANDED"), std::string::npos);

  // Once the missing entry lands, the audit is clean.
  std::ofstream(dir("cacheA") + "/" + entry_name(p3)) << "{}";
  audit = jobs::audit_claims(dir("claims"), {dir("cacheA"), dir("cacheB")});
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.covered, 3u);
}

TEST_F(ClaimTest, CacheDigestTracksContentNotLayout) {
  fs::create_directories(dir("d1"));
  fs::create_directories(dir("d2"));
  const std::string name = "kop-0123456789abcdef.json";
  const std::string other = "kop-fedcba9876543210.json";
  std::ofstream(dir("d1") + "/" + name) << "{\"v\":1}";
  std::ofstream(dir("d2") + "/" + name) << "{\"v\":1}";
  // Same entries in different directories digest identically.
  EXPECT_EQ(jobs::cache_digest(dir("d1")), jobs::cache_digest(dir("d2")));
  // Non-entry files are invisible to the digest...
  std::ofstream(dir("d2") + "/notes.txt") << "scratch";
  EXPECT_EQ(jobs::cache_digest(dir("d1")), jobs::cache_digest(dir("d2")));
  // ...but a differing entry set or differing bytes is a different sweep.
  std::ofstream(dir("d2") + "/" + other) << "{\"v\":2}";
  EXPECT_NE(jobs::cache_digest(dir("d1")), jobs::cache_digest(dir("d2")));
}

TEST_F(ClaimTest, ConcurrentClaimersGetExactlyOneWinnerPerPoint) {
  const std::string cdir = dir("claims");
  constexpr int kWorkers = 8;
  constexpr int kPoints = 16;
  std::atomic<int> wins[kPoints] = {};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      jobs::ClaimDir claims(cdir);
      // Stagger iteration so workers race on different points first.
      for (int i = 0; i < kPoints; ++i) {
        const int pt = (i + w) % kPoints;
        if (claims.try_claim(tiny_point(pt + 1))) wins[pt]++;
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int pt = 0; pt < kPoints; ++pt) {
    EXPECT_EQ(wins[pt].load(), 1) << "point " << pt;
  }
}

TEST_F(ClaimTest, ShardAndClaimAreMutuallyExclusive) {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  jobs::JobOptions jopts;
  jopts.shard.index = 0;
  jopts.shard.count = 2;
  jopts.claim_dir = dir("claims");
  MetricsSink sink("claim_test");
  EXPECT_THROW(kop::harness::print_nas_normalized("x", "phi", {PathKind::kRtk},
                                                  {1}, suite, &sink, jopts),
               std::invalid_argument);
}

TEST_F(ClaimTest, ThreeWorkersCoverExactlyOnceAndReplayByteIdentically) {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(2);
  const std::vector<PathKind> paths = {PathKind::kRtk};
  const std::vector<int> scales = {1, 4};
  const auto points =
      kop::harness::enumerate_nas_normalized("phi", paths, scales, suite);

  // The reference rendering: unsharded, no cache.
  MetricsSink ref_sink("claim_workflow");
  const std::string reference = kop::harness::print_nas_normalized(
      "Figure 9 (reduced)", "phi", paths, scales, suite, &ref_sink, {});

  // Three workers run the SAME command concurrently: full matrix,
  // shared claim dir, private caches.
  constexpr int kWorkers = 3;
  std::vector<std::string> outs(kWorkers);
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        jobs::JobOptions jopts;
        jopts.jobs = 1;
        jopts.claim_dir = dir("claims");
        jopts.cache_dir = dir("worker" + std::to_string(w));
        MetricsSink sink("claim_workflow_worker");
        outs[w] = kop::harness::print_nas_normalized(
            "Figure 9 (reduced)", "phi", paths, scales, suite, &sink, jopts);
      });
    }
    for (auto& t : threads) t.join();
  }

  // Claim mode never prints the figure table, and the claim ledger
  // holds exactly one claim file per point.
  std::size_t claim_files = 0;
  for (const auto& e : fs::directory_iterator(dir("claims"))) {
    EXPECT_EQ(e.path().extension(), ".claim");
    ++claim_files;
  }
  EXPECT_EQ(claim_files, points.size());
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(outs[w].find("geomean"), std::string::npos);
    EXPECT_NE(outs[w].find("[claim] executed"), std::string::npos);
  }

  // Every point's cache entry exists in exactly one worker cache.
  for (const auto& p : points) {
    const std::string entry =
        "kop-" + jobs::hex16(jobs::ResultCache::key(p)) + ".json";
    int copies = 0;
    for (int w = 0; w < kWorkers; ++w) {
      if (fs::exists(fs::path(dir("worker" + std::to_string(w))) / entry))
        ++copies;
    }
    EXPECT_EQ(copies, 1) << p.label();
  }

  // Merge (checking coverage against the static-shard manifest, which
  // names the same entries) and replay without simulating anything.
  const std::string manifest_path = dir("manifest.txt");
  {
    jobs::ShardSpec shard;  // count=1: manifest of the whole sweep
    std::ofstream out(manifest_path);
    out << jobs::shard_list_text(points, shard);
  }
  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.expect_path = manifest_path;
  for (int w = 0; w < kWorkers; ++w)
    mopts.sources.push_back(dir("worker" + std::to_string(w)));
  const auto report = jobs::merge_caches(mopts);
  EXPECT_TRUE(report.ok()) << report.text();
  EXPECT_EQ(report.merged, points.size());

  jobs::JobOptions replay;
  replay.cache_dir = dir("merged");
  MetricsSink replay_sink("claim_workflow_replay");
  const std::string replayed = kop::harness::print_nas_normalized(
      "Figure 9 (reduced)", "phi", paths, scales, suite, &replay_sink, replay);
  EXPECT_EQ(replayed, reference);
}

}  // namespace
