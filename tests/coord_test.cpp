// The sweep coordinator: line-protocol parsing, the worker liveness
// state machine, lease lifecycle edge cases (renewal at the TTL
// boundary, the double-reclaim race, Suspect -> Alive recovery,
// coordinator restart with in-flight leases), the cache-serving GET
// path, and the socket front-end end-to-end (kop_sweepd's Server +
// Client, and JobRunner --coord dispatch).
#include <gtest/gtest.h>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "coord/client.hpp"
#include "coord/coordinator.hpp"
#include "coord/journal.hpp"
#include "coord/lease.hpp"
#include "coord/liveness.hpp"
#include "coord/proto.hpp"
#include "coord/server.hpp"
#include "harness/figures.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/runner.hpp"

namespace {

namespace fs = std::filesystem;
namespace coord = kop::coord;
namespace jobs = kop::harness::jobs;

// --- proto -----------------------------------------------------------------

TEST(CoordProto, Hex16RoundTripsAndIsStrict) {
  EXPECT_EQ(coord::to_hex16(0), "0000000000000000");
  EXPECT_EQ(coord::to_hex16(0xdeadbeef12345678ULL), "deadbeef12345678");
  std::uint64_t v = 0;
  EXPECT_TRUE(coord::parse_hex16("deadbeef12345678", &v));
  EXPECT_EQ(v, 0xdeadbeef12345678ULL);
  EXPECT_FALSE(coord::parse_hex16("DEADBEEF12345678", &v));  // upper case
  EXPECT_FALSE(coord::parse_hex16("deadbeef1234567", &v));   // 15 digits
  EXPECT_FALSE(coord::parse_hex16("deadbeef123456789", &v)); // 17 digits
  EXPECT_FALSE(coord::parse_hex16("deadbeef1234567g", &v));  // not hex
}

TEST(CoordProto, ParsesEveryVerb) {
  const std::string h = coord::to_hex16(42), l = coord::to_hex16(7);
  using Verb = coord::Request::Verb;

  auto r = coord::parse_request("HELLO w-1");
  EXPECT_EQ(r.verb, Verb::kHello);
  EXPECT_EQ(r.worker, "w-1");

  r = coord::parse_request("NEXT host:123");
  EXPECT_EQ(r.verb, Verb::kNext);
  EXPECT_EQ(r.worker, "host:123");

  r = coord::parse_request("LEASE w " + h + " kop-00000000000000ff.json");
  EXPECT_EQ(r.verb, Verb::kLease);
  EXPECT_EQ(r.hash, 42u);
  EXPECT_EQ(r.entry, "kop-00000000000000ff.json");

  r = coord::parse_request("RENEW w " + l);
  EXPECT_EQ(r.verb, Verb::kRenew);
  EXPECT_EQ(r.lease_id, 7u);

  r = coord::parse_request("DONE w " + l + " " + h);
  EXPECT_EQ(r.verb, Verb::kDone);
  EXPECT_EQ(r.lease_id, 7u);
  EXPECT_EQ(r.hash, 42u);

  EXPECT_EQ(coord::parse_request("PING w").verb, Verb::kPing);
  EXPECT_EQ(coord::parse_request("BYE w").verb, Verb::kBye);
  r = coord::parse_request("GET " + h);
  EXPECT_EQ(r.verb, Verb::kGet);
  EXPECT_EQ(r.hash, 42u);
  EXPECT_EQ(coord::parse_request("STATS").verb, Verb::kStats);
  EXPECT_EQ(coord::parse_request("SHUTDOWN").verb, Verb::kShutdown);
}

TEST(CoordProto, RejectsMalformedLines) {
  using Verb = coord::Request::Verb;
  EXPECT_EQ(coord::parse_request("").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("HELLO").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("HELLO a b").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("FROB w").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("GET 123").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("LEASE w nothex0000000000x").verb,
            Verb::kInvalid);
  // Worker ids are charset- and length-limited.
  EXPECT_EQ(coord::parse_request("HELLO bad`name").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("HELLO " + std::string(200, 'a')).verb,
            Verb::kInvalid);
  // Every invalid parse says why.
  EXPECT_FALSE(coord::parse_request("HELLO").error.empty());
}

TEST(CoordProto, ParseAddressDistinguishesUnixFromTcp) {
  coord::Address a;
  std::string err;

  // Anything with a slash, or without a colon, is a unix path.
  ASSERT_TRUE(coord::parse_address("/tmp/kop.sock", &a, &err));
  EXPECT_EQ(a.kind, coord::Address::Kind::kUnix);
  EXPECT_EQ(a.path, "/tmp/kop.sock");
  ASSERT_TRUE(coord::parse_address("relative.sock", &a, &err));
  EXPECT_EQ(a.kind, coord::Address::Kind::kUnix);
  // A path with a colon stays a path as long as it has a slash.
  ASSERT_TRUE(coord::parse_address("./odd:name.sock", &a, &err));
  EXPECT_EQ(a.kind, coord::Address::Kind::kUnix);
  EXPECT_EQ(a.path, "./odd:name.sock");

  // host:port splits at the *last* colon; the port must be numeric.
  ASSERT_TRUE(coord::parse_address("127.0.0.1:7700", &a, &err));
  EXPECT_EQ(a.kind, coord::Address::Kind::kTcp);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7700);
  ASSERT_TRUE(coord::parse_address("sweephost:0", &a, &err));
  EXPECT_EQ(a.port, 0);  // ephemeral-port request

  EXPECT_FALSE(coord::parse_address("", &a, &err));
  EXPECT_FALSE(coord::parse_address("host:", &a, &err));
  EXPECT_FALSE(coord::parse_address("host:notaport", &a, &err));
  EXPECT_FALSE(coord::parse_address("host:70000", &a, &err));
  EXPECT_FALSE(err.empty());
}

TEST(CoordProto, ParsesAndBoundsMget) {
  using Verb = coord::Request::Verb;
  std::string line = "MGET";
  for (int i = 1; i <= static_cast<int>(coord::kMgetMaxHashes); ++i) {
    line += " " + coord::to_hex16(static_cast<std::uint64_t>(i));
  }
  auto r = coord::parse_request(line);
  EXPECT_EQ(r.verb, Verb::kMget);
  ASSERT_EQ(r.hashes.size(), coord::kMgetMaxHashes);
  EXPECT_EQ(r.hashes.front(), 1u);
  EXPECT_EQ(r.hashes.back(), coord::kMgetMaxHashes);

  // One over the cap, an empty batch, and a bad hash all fail loudly.
  EXPECT_EQ(coord::parse_request(line + " " + coord::to_hex16(65)).verb,
            Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("MGET").verb, Verb::kInvalid);
  EXPECT_EQ(coord::parse_request("MGET nothex").verb, Verb::kInvalid);
}

// --- liveness --------------------------------------------------------------

TEST(CoordLiveness, FullStateMachineWithRecovery) {
  coord::LivenessOptions opt;
  opt.suspect_after_ms = 3000;
  opt.dead_after_ms = 10000;
  coord::LivenessTracker lv(opt);

  EXPECT_EQ(lv.state("w"), coord::WorkerState::kUnknown);
  EXPECT_EQ(lv.heartbeat("w", 0), coord::WorkerState::kUnknown);  // no HELLO

  EXPECT_EQ(lv.hello("w", 0), 1u);
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kAlive);

  // Silence just below the threshold keeps it Alive.
  EXPECT_TRUE(lv.advance(2999).empty());
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kAlive);
  // At the threshold it becomes Suspect...
  EXPECT_TRUE(lv.advance(3000).empty());
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kSuspect);
  // ...and a late heartbeat recovers it (Suspect -> Alive).
  EXPECT_EQ(lv.heartbeat("w", 3500), coord::WorkerState::kAlive);
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kAlive);
  const auto snap = lv.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].suspects, 1u);
  EXPECT_EQ(snap[0].recoveries, 1u);

  // Full silence runs Alive -> Suspect -> Dead; the death is reported
  // exactly once.
  EXPECT_TRUE(lv.advance(3500 + 3000).empty());
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kSuspect);
  const auto died = lv.advance(3500 + 10000);
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0], "w");
  EXPECT_TRUE(lv.advance(3500 + 10001).empty());

  // Dead is terminal per incarnation: heartbeats don't resurrect...
  EXPECT_EQ(lv.heartbeat("w", 14000), coord::WorkerState::kDead);
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kDead);
  // ...but a fresh HELLO registers incarnation 2, Alive again.
  EXPECT_EQ(lv.hello("w", 14000), 2u);
  EXPECT_EQ(lv.state("w"), coord::WorkerState::kAlive);
}

// --- lease lifecycle edge cases --------------------------------------------

coord::PointInfo synthetic_point(std::uint64_t hash) {
  coord::PointInfo info;
  info.hash = hash;
  info.label = "synthetic";
  return info;
}

TEST(CoordLease, RenewalAtTtlBoundary) {
  coord::LeaseTable table(100);
  table.add_point(synthetic_point(1));
  coord::Lease lease;
  ASSERT_EQ(table.grant_next("w", 0, &lease), coord::GrantOutcome::kGranted);
  EXPECT_EQ(lease.expires_ms, 100);

  // One tick before expiry the renewal wins and pushes the window.
  EXPECT_EQ(table.renew(lease.id, 99), coord::RenewOutcome::kOk);
  // Exactly at the (new) boundary the renewal loses: expiry is
  // exclusive, so now == expires_ms is already expired.
  EXPECT_EQ(table.renew(lease.id, 199), coord::RenewOutcome::kExpired);
  // A reclaim sweep at the boundary takes the point back...
  EXPECT_EQ(table.reclaim_expired(198).size(), 0u);
  EXPECT_EQ(table.reclaim_expired(199).size(), 1u);
  EXPECT_EQ(table.point_state(1), coord::PointState::kQueued);
  // ...after which the old id stays dead (kExpired, not kUnknown: the
  // id was real once) and a never-issued id is kUnknown.
  EXPECT_EQ(table.renew(lease.id, 200), coord::RenewOutcome::kExpired);
  EXPECT_EQ(table.renew(9999, 200), coord::RenewOutcome::kUnknown);
}

TEST(CoordLease, DoubleReclaimRequeuesExactlyOnce) {
  coord::LeaseTable table(100);
  table.add_point(synthetic_point(5));
  coord::Lease lease;
  ASSERT_EQ(table.grant_next("w1", 0, &lease), coord::GrantOutcome::kGranted);

  // Two racing reclaim sweeps at the same instant: the second finds
  // nothing, the point is queued exactly once.
  EXPECT_EQ(table.reclaim_expired(100).size(), 1u);
  EXPECT_EQ(table.reclaim_expired(100).size(), 0u);
  EXPECT_EQ(table.queued(), 1u);

  // The point re-grants to another worker with a fresh lease id.
  coord::Lease lease2;
  ASSERT_EQ(table.grant_next("w2", 150, &lease2),
            coord::GrantOutcome::kGranted);
  EXPECT_EQ(lease2.point, 5u);
  EXPECT_NE(lease2.id, lease.id);

  // The original holder's completion arrives late: its id no longer
  // resolves (the Coordinator layer resolves it by hash instead).
  EXPECT_EQ(table.complete(lease.id), coord::CompleteOutcome::kAlreadyComplete);
  EXPECT_EQ(table.point_state(5), coord::PointState::kLeased);
  EXPECT_EQ(table.complete(lease2.id), coord::CompleteOutcome::kOk);
  EXPECT_TRUE(table.drained());
}

// The same race at the protocol level: the coordinator accepts exactly
// one completion, attributing the late one as OK-STALE / DUP.
TEST(CoordLease, StaleCompletionResolvesByHashExactlyOnce) {
  coord::CoordinatorOptions opt;
  opt.lease_ttl_ms = 100;
  opt.liveness.suspect_after_ms = 1000;
  opt.liveness.dead_after_ms = 5000;
  coord::Coordinator c(opt, {});
  c.add_point(synthetic_point(5));
  const std::string h = coord::to_hex16(5);

  EXPECT_EQ(c.handle_line("HELLO w1", 0).rfind("OK 1 ", 0), 0u);
  const auto g1 = coord::split_tokens(c.handle_line("NEXT w1", 0));
  ASSERT_EQ(g1[0], "GRANT");
  const std::string l1 = g1[2];

  c.tick(100);  // lease expires, point requeued
  c.tick(100);  // double reclaim: no-op
  EXPECT_EQ(c.handle_line("RENEW w1 " + l1, 150), "EXPIRED");

  EXPECT_EQ(c.handle_line("HELLO w2", 150).rfind("OK 1 ", 0), 0u);
  const auto g2 = coord::split_tokens(c.handle_line("NEXT w2", 150));
  ASSERT_EQ(g2[0], "GRANT");
  EXPECT_EQ(g2[1], h);

  // w1 finished anyway (deterministic result, already on disk): its
  // stale completion is accepted, w2's then lands as a duplicate.
  EXPECT_EQ(c.handle_line("DONE w1 " + l1 + " " + h, 180), "OK-STALE");
  EXPECT_EQ(c.handle_line("DONE w2 " + g2[2] + " " + h, 200), "DUP");
  EXPECT_TRUE(c.drained());
  EXPECT_EQ(c.counters().get("completions"), 1u);
  EXPECT_EQ(c.counters().get("completions_stale_lease"), 1u);
  EXPECT_EQ(c.counters().get("completions_dup"), 1u);
}

TEST(CoordLease, DeadWorkerLeasesReclaimedAndReHelloIsNewIncarnation) {
  coord::CoordinatorOptions opt;
  opt.lease_ttl_ms = 60000;  // TTL never expires in this test; death reclaims
  opt.liveness.suspect_after_ms = 100;
  opt.liveness.dead_after_ms = 300;
  coord::Coordinator c(opt, {});
  c.add_point(synthetic_point(1));
  c.add_point(synthetic_point(2));

  c.handle_line("HELLO w1", 0);
  const auto g = coord::split_tokens(c.handle_line("NEXT w1", 0));
  ASSERT_EQ(g[0], "GRANT");

  c.tick(150);  // Suspect: leases stay put
  EXPECT_EQ(c.leases().leased(), 1u);
  c.tick(300);  // Dead: leases reclaimed
  EXPECT_EQ(c.leases().leased(), 0u);
  EXPECT_EQ(c.leases().queued(), 2u);
  EXPECT_EQ(c.counters().get("workers_died"), 1u);
  EXPECT_EQ(c.counters().get("leases_reclaimed_dead"), 1u);

  // The dead incarnation is locked out until it re-HELLOs.
  EXPECT_EQ(c.handle_line("NEXT w1", 310), "DEAD");
  EXPECT_EQ(c.handle_line("HELLO w1", 320).rfind("OK 2 ", 0), 0u);
  EXPECT_EQ(coord::split_tokens(c.handle_line("NEXT w1", 330))[0], "GRANT");
}

// --- cache-serving GET path ------------------------------------------------

TEST(CoordServe, GetAnswersHitPendingUnknown) {
  std::map<std::uint64_t, std::string> store = {{1, "doc-one\n"}};
  coord::Coordinator c({}, [&store](std::uint64_t h, std::string* doc) {
    const auto it = store.find(h);
    if (it == store.end()) return false;
    *doc = it->second;
    return true;
  });
  c.add_point(synthetic_point(1));
  c.add_point(synthetic_point(2));

  // Warm point: served with a length-prefixed body, and the serve is
  // ground truth for dispatch (the point flips to complete).
  EXPECT_EQ(c.handle_line("GET " + coord::to_hex16(1), 0),
            "HIT 8\ndoc-one\n");
  EXPECT_EQ(c.leases().point_state(1), coord::PointState::kComplete);

  // Known-but-unfinished: PENDING with the dispatch state.
  EXPECT_EQ(c.handle_line("GET " + coord::to_hex16(2), 0), "PENDING queued");
  c.handle_line("HELLO w", 0);
  c.handle_line("LEASE w " + coord::to_hex16(2), 0);
  EXPECT_EQ(c.handle_line("GET " + coord::to_hex16(2), 0), "PENDING leased");

  EXPECT_EQ(c.handle_line("GET " + coord::to_hex16(3), 0), "UNKNOWN");
  EXPECT_EQ(c.counters().get("serve_cache_hits"), 1u);
  EXPECT_EQ(c.counters().get("serve_unknown"), 1u);
}

TEST(CoordServe, MgetJoinsSubResponsesAndReportsComplete) {
  std::map<std::uint64_t, std::string> store = {{1, "doc-one\n"}};
  coord::Coordinator c({}, [&store](std::uint64_t h, std::string* doc) {
    const auto it = store.find(h);
    if (it == store.end()) return false;
    *doc = it->second;
    return true;
  });
  c.add_point(synthetic_point(1));
  c.add_point(synthetic_point(2));
  c.add_point(synthetic_point(3));

  // Point 3 completes, but its entry lives in some *worker's* cache,
  // not this daemon's: GET must say COMPLETE, not PENDING queued.
  c.handle_line("HELLO w", 0);
  const auto lease =
      coord::split_tokens(c.handle_line("LEASE w " + coord::to_hex16(3), 0));
  ASSERT_EQ(lease[0], "GRANT");
  EXPECT_EQ(
      c.handle_line("DONE w " + lease[2] + " " + coord::to_hex16(3), 0), "OK");
  EXPECT_EQ(c.handle_line("GET " + coord::to_hex16(3), 0), "COMPLETE");

  // One MGET line, sub-responses joined by '\n' in request order --
  // exactly the framing a sequence of GETs would produce (a HIT body
  // keeps its empty-line terminator inside the batch).
  const std::string reply = c.handle_line(
      "MGET " + coord::to_hex16(1) + " " + coord::to_hex16(2) + " " +
          coord::to_hex16(3) + " " + coord::to_hex16(99),
      0);
  EXPECT_EQ(reply, "HIT 8\ndoc-one\n\nPENDING queued\nCOMPLETE\nUNKNOWN");
  EXPECT_EQ(c.counters().get("serve_mget_batches"), 1u);
  EXPECT_EQ(c.counters().get("serve_mget_hashes"), 4u);
}

// --- journal ---------------------------------------------------------------

TEST(CoordJournal, RecordsRoundTripThroughEscaping) {
  coord::JournalRecord r;
  r.type = coord::JournalRecord::Type::kRegister;
  r.hash = 0xdeadbeef12345678ULL;
  r.entry = "kop-00ff.json";
  r.payload = "tok with spaces %and! bangs";
  r.label = "-starts-with-dash";
  const std::string line = coord::encode_record(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  coord::JournalRecord d;
  std::string err;
  ASSERT_TRUE(coord::decode_record(line, &d, &err)) << err;
  EXPECT_EQ(d.type, coord::JournalRecord::Type::kRegister);
  EXPECT_EQ(d.hash, r.hash);
  EXPECT_EQ(d.entry, r.entry);
  EXPECT_EQ(d.payload, r.payload);
  EXPECT_EQ(d.label, r.label);

  // Empty string fields survive too (encoded as "-").
  coord::JournalRecord g;
  g.type = coord::JournalRecord::Type::kGrant;
  g.lease_id = 7;
  g.hash = 42;
  g.worker = "host:123";
  g.expires_ms = 5000;
  ASSERT_TRUE(coord::decode_record(coord::encode_record(g), &d, &err)) << err;
  EXPECT_EQ(d.lease_id, 7u);
  EXPECT_EQ(d.worker, "host:123");
  EXPECT_EQ(d.expires_ms, 5000);

  // A flipped byte in a *terminated* record is corruption, and the
  // error says so.
  std::string bad = line;
  bad[2] = (bad[2] == 'a') ? 'b' : 'a';
  EXPECT_FALSE(coord::decode_record(bad, &d, &err));
  EXPECT_NE(err.find("checksum"), std::string::npos);
  EXPECT_FALSE(coord::decode_record("X 12 !0000000000000000", &d, &err));
}

// Drive a journaled coordinator, then replay the file into a fresh one:
// the lease tables must render identically, a torn tail must be
// tolerated, and a corrupt record must be rejected with a line number.
TEST(CoordJournal, ReplayReproducesLiveTable) {
  const fs::path root =
      fs::temp_directory_path() /
      ("kop_journal_replay_" + std::to_string(getpid()));
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string jpath = (root / "queue.journal").string();

  coord::CoordinatorOptions opt;
  opt.lease_ttl_ms = 60000;
  std::string expected;
  {
    coord::Coordinator live(opt, {});
    coord::Journal journal(jpath);
    live.attach_journal(&journal);
    for (std::uint64_t h : {1, 2, 3, 4}) live.add_point(synthetic_point(h));
    live.handle_line("HELLO w1", 0);
    const auto g1 = coord::split_tokens(live.handle_line("NEXT w1", 0));
    const auto g2 = coord::split_tokens(live.handle_line("NEXT w1", 5));
    ASSERT_EQ(g1[0], "GRANT");
    ASSERT_EQ(g2[0], "GRANT");
    EXPECT_EQ(live.handle_line("DONE w1 " + g1[2] + " " + g1[1], 10), "OK");
    EXPECT_EQ(live.handle_line("RENEW w1 " + g2[2], 20), "OK 60000");
    journal.commit();
    expected = live.debug_state();
  }

  // Replay: one complete point, one live lease with the renewed expiry,
  // two still queued -- bit-identical table rendering.
  coord::Coordinator fresh(opt, {});
  coord::ReplayStats stats;
  std::string err;
  ASSERT_TRUE(fresh.recover_from_journal(jpath, &stats, &err)) << err;
  EXPECT_GT(stats.records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(fresh.debug_state(), expected);

  // The restart rule: the lease's holder cannot renew against this
  // process, so requeue it (journaled as a reclaim).
  EXPECT_EQ(fresh.requeue_live_leases(), 1u);
  EXPECT_EQ(fresh.leases().leased(), 0u);
  EXPECT_EQ(fresh.leases().queued(), 3u);
  EXPECT_EQ(fresh.leases().complete(), 1u);

  // A torn tail (crash mid-append: no terminator) is a crash artifact,
  // tolerated and reported.
  {
    std::ofstream app(jpath, std::ios::binary | std::ios::app);
    app << "G 00000000000";  // unterminated partial record
  }
  coord::Coordinator torn(opt, {});
  ASSERT_TRUE(torn.recover_from_journal(jpath, &stats, &err)) << err;
  EXPECT_GT(stats.truncated_bytes, 0u);
  EXPECT_EQ(torn.debug_state(), expected);

  // A corrupt *terminated* record is a hard error naming the line.
  {
    std::ofstream trunc(jpath, std::ios::binary | std::ios::app);
    trunc << "\nD 00000000000000aa !0000000000000bad\n";
  }
  coord::Coordinator corrupt(opt, {});
  EXPECT_FALSE(corrupt.recover_from_journal(jpath, &stats, &err));
  EXPECT_NE(err.find("checksum"), std::string::npos);
  EXPECT_NE(err.find(jpath), std::string::npos);

  fs::remove_all(root);
}

TEST(CoordJournal, CompactionPreservesReplayEquality) {
  const fs::path root =
      fs::temp_directory_path() /
      ("kop_journal_compact_" + std::to_string(getpid()));
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string jpath = (root / "queue.journal").string();

  coord::CoordinatorOptions opt;
  opt.lease_ttl_ms = 60000;
  opt.journal_compact_after = 2;  // compact nearly every tick
  std::string expected;
  std::uint64_t compactions = 0;
  {
    coord::Coordinator live(opt, {});
    coord::Journal journal(jpath);
    live.attach_journal(&journal);
    for (std::uint64_t h : {10, 11, 12, 13, 14}) {
      live.add_point(synthetic_point(h));
      live.tick(static_cast<std::int64_t>(h));
    }
    live.handle_line("HELLO w", 20);
    for (int i = 0; i < 3; ++i) {
      const auto g = coord::split_tokens(live.handle_line("NEXT w", 30));
      ASSERT_EQ(g[0], "GRANT");
      if (i > 0) {
        EXPECT_EQ(live.handle_line("DONE w " + g[2] + " " + g[1], 40), "OK");
      }
      live.tick(50 + i);
    }
    journal.commit();
    expected = live.debug_state();
    compactions = live.counters().get("journal_compactions");
  }
  EXPECT_GT(compactions, 0u);

  coord::Coordinator fresh(opt, {});
  coord::ReplayStats stats;
  std::string err;
  ASSERT_TRUE(fresh.recover_from_journal(jpath, &stats, &err)) << err;
  EXPECT_EQ(fresh.debug_state(), expected);

  fs::remove_all(root);
}

// --- restart with in-flight leases -----------------------------------------

jobs::PointSpec tiny_point(int threads) {
  jobs::PointSpec p;
  p.kind = jobs::PointSpec::Kind::kNas;
  p.machine = "phi";
  p.path = kop::core::PathKind::kRtk;
  p.threads = threads;
  p.nas = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2)[0];
  return p;
}

TEST(CoordRestart, InFlightLeasesRequeueCompletedPointsStayComplete) {
  const fs::path root =
      fs::temp_directory_path() /
      ("kop_coord_restart_" + std::to_string(getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  std::map<std::uint64_t, jobs::PointSpec> specs;
  for (int t : {1, 2, 4}) {
    const auto spec = tiny_point(t);
    specs.emplace(spec.content_hash(), spec);
  }
  jobs::ResultCache cache(root.string());
  const coord::CacheProbe probe = [&](std::uint64_t h, std::string* doc) {
    const auto it = specs.find(h);
    if (it == specs.end()) return false;
    jobs::PointResult res;
    if (!cache.load(it->second, &res)) return false;
    *doc = jobs::ResultCache::encode(it->second, res);
    return true;
  };
  auto make = [&] {
    coord::CoordinatorOptions opt;
    opt.lease_ttl_ms = 60000;
    coord::Coordinator c(opt, probe);
    for (const auto& [h, spec] : specs) {
      coord::PointInfo info;
      info.hash = h;
      info.label = spec.label();
      c.add_point(std::move(info));
    }
    return c;
  };

  // First life: two leases go out; one point is simulated, stored, and
  // reported; the other lease is still in flight when the coordinator
  // dies (leases are memory-only).
  {
    auto c1 = make();
    EXPECT_EQ(c1.sync_with_cache(), 0u);
    c1.handle_line("HELLO w", 0);
    const auto g1 = coord::split_tokens(c1.handle_line("NEXT w", 0));
    const auto g2 = coord::split_tokens(c1.handle_line("NEXT w", 0));
    ASSERT_EQ(g1[0], "GRANT");
    ASSERT_EQ(g2[0], "GRANT");
    std::uint64_t h1 = 0;
    ASSERT_TRUE(coord::parse_hex16(g1[1], &h1));
    const auto& spec = specs.at(h1);
    cache.store(spec, jobs::run_point(spec));
    EXPECT_EQ(c1.handle_line("DONE w " + g1[2] + " " + g1[1], 10), "OK");
    EXPECT_EQ(c1.leases().complete(), 1u);
    EXPECT_EQ(c1.leases().leased(), 1u);
  }

  // Restart: the cache tells the new coordinator which work is already
  // done; the in-flight lease is forgotten, so its point re-queues.
  auto c2 = make();
  EXPECT_EQ(c2.sync_with_cache(), 1u);
  EXPECT_EQ(c2.leases().complete(), 1u);
  EXPECT_EQ(c2.leases().leased(), 0u);
  EXPECT_EQ(c2.leases().queued(), 2u);

  // The re-queued points drain normally (and the warm one is never
  // re-dispatched).
  c2.handle_line("HELLO w", 0);
  std::set<std::uint64_t> regranted;
  for (int i = 0; i < 2; ++i) {
    const auto g = coord::split_tokens(c2.handle_line("NEXT w", 0));
    ASSERT_EQ(g[0], "GRANT");
    std::uint64_t h = 0;
    ASSERT_TRUE(coord::parse_hex16(g[1], &h));
    regranted.insert(h);
    EXPECT_EQ(c2.handle_line("DONE w " + g[2] + " " + g[1], 5), "OK");
  }
  EXPECT_EQ(regranted.size(), 2u);
  EXPECT_EQ(c2.handle_line("NEXT w", 10), "DRAINED");
  EXPECT_TRUE(c2.drained());

  fs::remove_all(root);
}

// --- socket front-end ------------------------------------------------------

TEST(CoordServer, EndToEndOverUnixSocket) {
  const std::string sock =
      "/tmp/kop_coord_e2e_" + std::to_string(getpid()) + ".sock";
  std::map<std::uint64_t, std::string> store = {{7, "served-doc\n"}};
  coord::Coordinator c({}, [&store](std::uint64_t h, std::string* doc) {
    const auto it = store.find(h);
    if (it == store.end()) return false;
    *doc = it->second;
    return true;
  });
  coord::PointInfo p1 = synthetic_point(1);
  p1.payload = "tok-one";
  c.add_point(std::move(p1));
  c.add_point(synthetic_point(2));

  coord::ServerOptions sopt;
  sopt.socket_path = sock;
  sopt.poll_ms = 10;
  coord::Server server(&c, sopt);
  std::thread daemon([&] { server.run(); });

  {
    coord::Client client(sock);
    const auto hello = client.hello("tester");
    EXPECT_EQ(hello.incarnation, 1u);
    EXPECT_GT(hello.ttl_ms, 0);

    // Drain the two-point sweep over the wire.
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2; ++i) {
      const auto grant = client.next("tester");
      ASSERT_TRUE(grant.granted) << grant.status;
      seen.insert(grant.point);
      if (grant.point == 1) EXPECT_EQ(grant.payload, "tok-one");
      EXPECT_TRUE(client.renew("tester", grant.lease_id));
      EXPECT_TRUE(client.done("tester", grant.lease_id, grant.point));
    }
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(client.next("tester").status, "DRAINED");

    // GET serves a body through the same connection.
    const auto hit = client.get(7);
    EXPECT_EQ(hit.status, "HIT");
    EXPECT_EQ(hit.doc, "served-doc\n");
    EXPECT_EQ(client.get(999).status, "UNKNOWN");

    // STATS stays in frame after a HIT body.
    EXPECT_NE(client.stats().find("\"drained\":true"), std::string::npos);
    client.shutdown();
  }
  daemon.join();
  EXPECT_TRUE(c.drained());
}

TEST(CoordServer, JobRunnerCoordModeCoversSweepExactlyOnce) {
  const std::string sock =
      "/tmp/kop_coord_jr_" + std::to_string(getpid()) + ".sock";
  const fs::path root =
      fs::temp_directory_path() / ("kop_coord_jr_" + std::to_string(getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  // Worker-enumerated sweep: the daemon starts empty and registers
  // points as LEASE requests arrive (accept_unknown_points).
  coord::Coordinator c({}, {});
  coord::ServerOptions sopt;
  sopt.socket_path = sock;
  sopt.poll_ms = 10;
  coord::Server server(&c, sopt);
  std::thread daemon([&] { server.run(); });

  std::vector<jobs::PointSpec> points;
  for (int t : {1, 2, 3, 4}) points.push_back(tiny_point(t));

  constexpr int kWorkers = 3;
  std::vector<jobs::JobRunner::Stats> stats(kWorkers);
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        jobs::JobOptions jopts;
        jopts.jobs = 1;
        jopts.coord_socket = sock;
        jopts.cache_dir = (root / ("worker" + std::to_string(w))).string();
        jobs::JobRunner runner(jopts);
        const auto results = runner.run(points);
        jobs::require_ok(points, results);
        stats[w] = runner.stats();
      });
    }
    for (auto& t : workers) t.join();
  }

  {
    coord::Client admin(sock);
    admin.shutdown();
  }
  daemon.join();

  // Every point executed exactly once across the fleet; the rest were
  // skipped as leased-elsewhere or already complete.
  std::uint64_t executed = 0, skipped = 0;
  for (const auto& s : stats) {
    executed += s.executed;
    skipped += s.skipped;
  }
  EXPECT_EQ(executed, points.size());
  EXPECT_EQ(executed + skipped,
            static_cast<std::uint64_t>(kWorkers) * points.size());
  for (const auto& p : points) {
    const std::string entry =
        "kop-" + jobs::hex16(jobs::ResultCache::key(p)) + ".json";
    int copies = 0;
    for (int w = 0; w < kWorkers; ++w) {
      if (fs::exists(root / ("worker" + std::to_string(w)) / entry)) ++copies;
    }
    EXPECT_EQ(copies, 1) << p.label();
  }
  EXPECT_TRUE(c.drained());
  EXPECT_EQ(c.counters().get("completions"),
            static_cast<std::uint64_t>(points.size()));

  fs::remove_all(root);
}

// --- TCP transport ---------------------------------------------------------

// Raw TCP connection for exercising the server below the Client layer.
int raw_connect(const std::string& bound) {
  coord::Address addr;
  std::string err;
  EXPECT_TRUE(coord::parse_address(bound, &addr, &err)) << err;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  EXPECT_EQ(getaddrinfo(addr.host.c_str(), std::to_string(addr.port).c_str(),
                        &hints, &res),
            0);
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, res->ai_addr, res->ai_addrlen), 0);
  freeaddrinfo(res);
  return fd;
}

// Read until EOF or `stop` appears in the data; returns what was read.
std::string read_until_eof(int fd, std::size_t cap = 1u << 22) {
  std::string got;
  char buf[4096];
  while (got.size() < cap) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  return got;
}

TEST(CoordServer, EndToEndOverTcpWithBatchedGet) {
  std::map<std::uint64_t, std::string> store;
  for (std::uint64_t h = 100; h < 164; ++h) {
    store[h] = "doc-" + std::to_string(h) + "\n";
  }
  coord::Coordinator c({}, [&store](std::uint64_t h, std::string* doc) {
    const auto it = store.find(h);
    if (it == store.end()) return false;
    *doc = it->second;
    return true;
  });
  c.add_point(synthetic_point(1));
  for (std::uint64_t h = 100; h < 164; ++h) c.add_point(synthetic_point(h));

  coord::ServerOptions sopt;
  sopt.address = "127.0.0.1:0";  // ephemeral port; bound_address() tells
  sopt.poll_ms = 10;
  coord::Server server(&c, sopt);
  ASSERT_NE(server.bound_address().find("127.0.0.1:"), std::string::npos);
  ASSERT_NE(server.bound_address(), "127.0.0.1:0");
  std::thread daemon([&] { server.run(); });

  {
    coord::Client client(server.bound_address());
    EXPECT_EQ(client.hello("tcp-tester").incarnation, 1u);

    // The protocol is transport-agnostic: the worker loop runs as-is.
    const auto grant = client.next("tcp-tester");
    ASSERT_TRUE(grant.granted) << grant.status;
    EXPECT_TRUE(client.renew("tcp-tester", grant.lease_id));
    EXPECT_TRUE(client.done("tcp-tester", grant.lease_id, grant.point));

    // The acceptance criterion: a batch of 64 GETs costs exactly one
    // round trip, not 64.
    std::vector<std::uint64_t> hashes;
    for (std::uint64_t h = 100; h < 164; ++h) hashes.push_back(h);
    ASSERT_EQ(hashes.size(), coord::kMgetMaxHashes);
    const std::uint64_t before = client.round_trips();
    const auto replies = client.mget(hashes);
    EXPECT_EQ(client.round_trips() - before, 1u);
    ASSERT_EQ(replies.size(), hashes.size());
    for (std::size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].status, "HIT");
      EXPECT_EQ(replies[i].doc, store.at(hashes[i]));
    }

    // One hash past the cap wraps to a second wire batch.
    hashes.push_back(1);
    const std::uint64_t before2 = client.round_trips();
    EXPECT_EQ(client.mget(hashes).size(), hashes.size());
    EXPECT_EQ(client.round_trips() - before2, 2u);

    client.shutdown();
  }
  daemon.join();
}

TEST(CoordServer, TcpRejectsGarbageAndOversizedFrames) {
  coord::Coordinator c({}, {});
  c.add_point(synthetic_point(1));
  coord::ServerOptions sopt;
  sopt.address = "127.0.0.1:0";
  sopt.poll_ms = 10;
  coord::Server server(&c, sopt);
  std::thread daemon([&] { server.run(); });

  // A garbage verb gets an ERR reply; the connection survives and the
  // next (valid) request still works.
  {
    const int fd = raw_connect(server.bound_address());
    const std::string req = "FROB nonsense\nSTATS\n";
    ASSERT_EQ(::write(fd, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));
    std::string got;
    char buf[4096];
    while (got.find("\"points\"") == std::string::npos) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      ASSERT_GT(n, 0) << "connection died before STATS reply";
      got.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(got.rfind("ERR ", 0), 0u) << got.substr(0, 40);
    ::close(fd);
  }

  // A frame with no terminator growing past the line cap is a runaway,
  // not a request: the server closes the connection.
  {
    const int fd = raw_connect(server.bound_address());
    const std::string junk(256 * 1024, 'x');  // never a '\n'
    bool closed = false;
    for (int i = 0; i < 64 && !closed; ++i) {
      // MSG_NOSIGNAL: after the server closes, this write must come
      // back as an error, not a SIGPIPE.
      ssize_t n = ::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
      if (n < 0) closed = true;  // EPIPE/ECONNRESET after server close
    }
    if (!closed) closed = read_until_eof(fd).empty();
    EXPECT_TRUE(closed);
    ::close(fd);
  }

  // The server is still healthy for well-behaved clients.
  {
    coord::Client client(server.bound_address());
    EXPECT_NE(client.stats().find("\"points\""), std::string::npos);
    client.shutdown();
  }
  daemon.join();
}

TEST(CoordServer, SlowReaderIsBoundedWithoutStallingOthers) {
  // Every GET serves a 64KiB body against a 64KiB write-buffer cap: a
  // client that requests plenty and reads nothing must be closed, while
  // a normal client on the same loop keeps getting answers.
  std::map<std::uint64_t, std::string> store = {
      {9, std::string(64 * 1024, 'd') + "\n"}};
  coord::Coordinator c({}, [&store](std::uint64_t h, std::string* doc) {
    const auto it = store.find(h);
    if (it == store.end()) return false;
    *doc = it->second;
    return true;
  });
  c.add_point(synthetic_point(9));

  coord::ServerOptions sopt;
  sopt.address = "127.0.0.1:0";
  sopt.poll_ms = 10;
  sopt.max_write_buffer = 64 * 1024;
  coord::Server server(&c, sopt);
  std::thread daemon([&] { server.run(); });

  const int slow = raw_connect(server.bound_address());
  std::string burst;
  for (int i = 0; i < 64; ++i) burst += "GET " + coord::to_hex16(9) + "\n";
  // ~4MiB of replies owed against a 64KiB cap; the kernel socket
  // buffers absorb some, the server's wbuf bound must cut the rest.
  ASSERT_EQ(::send(slow, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  // While the slow reader sits there, a live client is still served.
  {
    coord::Client client(server.bound_address());
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(client.get(9).status, "HIT");
    }
  }

  // The slow connection was closed, not buffered without bound: what
  // the kernel already ferried drains, then EOF, well short of the
  // ~4MiB owed.  (A read timeout keeps a regression from hanging the
  // suite instead of failing it.)
  const timeval tv{2, 0};
  ::setsockopt(slow, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::size_t owed =
      64 * (store.at(9).size() + std::string("HIT 65537\n").size() + 1);
  const std::string drained = read_until_eof(slow);
  EXPECT_LT(drained.size(), owed);
  ::close(slow);

  {
    coord::Client admin(server.bound_address());
    admin.shutdown();
  }
  daemon.join();
}

}  // namespace
