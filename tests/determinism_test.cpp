// Schedule determinism: one (rng seed, sched policy, sched seed) triple
// names exactly one interleaving.  Re-running it must reproduce the
// virtual clock bit for bit at every layer -- raw engine, EPCC
// microbenchmarks, and a NAS functional kernel -- which is what makes
// a fuzzer-found seed replayable.
#include <gtest/gtest.h>

#include <vector>

#include "core/stack.hpp"
#include "epcc/epcc.hpp"
#include "harness/experiment.hpp"
#include "hw/topology.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nas/functional.hpp"
#include "osal/sync.hpp"
#include "sim/engine.hpp"

namespace kop {
namespace {

const sim::SchedPolicy kAllPolicies[] = {
    sim::SchedPolicy::kFifo, sim::SchedPolicy::kRandom, sim::SchedPolicy::kPct};

/// A contended workload on a raw engine: returns (end time, order in
/// which threads got the lock).
struct SimTrace {
  sim::Time end = 0;
  std::vector<int> order;
  bool operator==(const SimTrace& o) const {
    return end == o.end && order == o.order;
  }
};

SimTrace run_sim_workload(sim::SchedConfig sched) {
  sim::Engine engine(42, sched);
  linuxmodel::LinuxOs os(engine, hw::phi());
  osal::Mutex mu(os, 1000);
  SimTrace trace;
  for (int t = 0; t < 6; ++t) {
    os.spawn_thread(
        "t" + std::to_string(t),
        [&, t] {
          for (int i = 0; i < 3; ++i) {
            mu.lock();
            trace.order.push_back(t);
            os.compute_ns(100);
            mu.unlock();
            os.compute_ns(50 + 10 * t);
          }
        },
        t % os.machine().num_cpus);
  }
  engine.run();
  trace.end = engine.now();
  return trace;
}

TEST(Determinism, SimWorkloadIsBitIdenticalPerSeed) {
  for (sim::SchedPolicy policy : kAllPolicies) {
    sim::SchedConfig sched;
    sched.policy = policy;
    sched.seed = 77;
    const SimTrace a = run_sim_workload(sched);
    const SimTrace b = run_sim_workload(sched);
    EXPECT_EQ(a, b) << "policy " << sim::sched_policy_name(policy);
    EXPECT_EQ(a.order.size(), 18u);
  }
}

TEST(Determinism, RandomSeedsActuallyChangeTheInterleaving) {
  // Not a tautology: if the policy ignored its seed, every "random"
  // schedule would be the same schedule.
  const SimTrace base = run_sim_workload({sim::SchedPolicy::kRandom, 1});
  bool varied = false;
  for (std::uint64_t seed = 2; seed <= 8 && !varied; ++seed)
    varied = !(run_sim_workload({sim::SchedPolicy::kRandom, seed}) == base);
  EXPECT_TRUE(varied) << "8 random seeds produced identical lock orders";
}

TEST(Determinism, FifoDefaultMatchesLegacyEngineBehavior) {
  // SchedConfig{} must be indistinguishable from the pre-policy engine:
  // FIFO tie-break, untouched cost-model RNG.
  sim::Engine legacy(42);
  linuxmodel::LinuxOs os1(legacy, hw::phi());
  int done1 = 0;
  for (int t = 0; t < 4; ++t)
    os1.spawn_thread("t" + std::to_string(t), [&] {
      os1.compute_ns(1000);
      ++done1;
    }, t);
  legacy.run();

  sim::Engine configured(42, sim::SchedConfig{});
  linuxmodel::LinuxOs os2(configured, hw::phi());
  int done2 = 0;
  for (int t = 0; t < 4; ++t)
    os2.spawn_thread("t" + std::to_string(t), [&] {
      os2.compute_ns(1000);
      ++done2;
    }, t);
  configured.run();

  EXPECT_EQ(done1, done2);
  EXPECT_EQ(legacy.now(), configured.now());
}

std::vector<double> run_epcc_sync(sim::SchedConfig sched) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = 4;
  cfg.sched = sched;
  epcc::EpccConfig ecfg;
  ecfg.outer_reps = 2;
  ecfg.inner_iters = 4;
  ecfg.delay_ns = 200;
  auto ms = harness::run_epcc(cfg, harness::EpccPart::kSync, ecfg);
  std::vector<double> means;
  for (const auto& m : ms) means.push_back(m.overhead_us.mean());
  return means;
}

TEST(Determinism, EpccOverheadsAreBitIdenticalPerSeed) {
  for (sim::SchedPolicy policy : kAllPolicies) {
    sim::SchedConfig sched;
    sched.policy = policy;
    sched.seed = 9;
    const auto a = run_epcc_sync(sched);
    const auto b = run_epcc_sync(sched);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "policy " << sim::sched_policy_name(policy);
  }
}

sim::Time run_nas_cg(sim::SchedConfig sched) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = 4;
  cfg.sched = sched;
  auto stack = core::Stack::create(cfg);
  const int code = stack->run_omp_app([](komp::Runtime& rt) {
    auto v = nas::functional::verify(rt, "CG");
    return v.passed ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
  return stack->engine().now();
}

TEST(Determinism, NasCgVirtualTimeIsBitIdenticalPerSeed) {
  for (sim::SchedPolicy policy : kAllPolicies) {
    sim::SchedConfig sched;
    sched.policy = policy;
    sched.seed = 1337;
    EXPECT_EQ(run_nas_cg(sched), run_nas_cg(sched))
        << "policy " << sim::sched_policy_name(policy);
  }
}

}  // namespace
}  // namespace kop
