// Tests for the EPCC microbenchmark suite implementation.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "epcc/epcc.hpp"

namespace kop::epcc {
namespace {

EpccConfig quick_config() {
  EpccConfig c;
  c.outer_reps = 3;
  c.inner_iters = 4;
  c.delay_ns = 5 * sim::kMicrosecond;
  c.sched_iters_per_thread = 8;
  c.tasks_per_thread = 4;
  c.tree_depth = 3;
  return c;
}

std::vector<Measurement> run_part(core::PathKind path, int threads,
                                  const std::function<std::vector<Measurement>(Suite&)>& fn) {
  core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = path;
  cfg.num_threads = threads;
  auto stack = core::Stack::create(cfg);
  std::vector<Measurement> out;
  stack->run_omp_app([&](komp::Runtime& rt) {
    Suite suite(rt, quick_config());
    out = fn(suite);
    return 0;
  });
  return out;
}

const Measurement& find(const std::vector<Measurement>& ms,
                        const std::string& name) {
  for (const auto& m : ms) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("no measurement " + name);
}

TEST(Epcc, SyncbenchHasAllConstructs) {
  const auto ms = run_part(core::PathKind::kRtk, 8,
                           [](Suite& s) { return s.run_syncbench(); });
  for (const char* name :
       {"reference", "PARALLEL", "FOR", "PARALLEL_FOR", "BARRIER", "SINGLE",
        "CRITICAL", "LOCK/UNLOCK", "ORDERED", "ATOMIC", "REDUCTION"}) {
    EXPECT_NO_THROW(find(ms, name)) << name;
  }
  // Overheads are positive and sampled.
  EXPECT_GT(find(ms, "PARALLEL").overhead_us.mean(), 0.0);
  EXPECT_EQ(find(ms, "PARALLEL").overhead_us.count(), 3u);
  // PARALLEL_FOR costs at least as much as FOR.
  EXPECT_GE(find(ms, "PARALLEL_FOR").overhead_us.mean(),
            find(ms, "FOR").overhead_us.mean() * 0.5);
}

TEST(Epcc, SchedbenchChunkSweep) {
  // Use enough iterations per thread that every chunk size can still
  // spread over the team (the EPCC default is 128 per thread).
  core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = core::PathKind::kRtk;
  cfg.num_threads = 8;
  auto stack = core::Stack::create(cfg);
  std::vector<Measurement> ms;
  stack->run_omp_app([&](komp::Runtime& rt) {
    EpccConfig ec = quick_config();
    ec.sched_iters_per_thread = 256;
    Suite suite(rt, ec);
    ms = suite.run_schedbench();
    return 0;
  });
  EXPECT_NO_THROW(find(ms, "STATIC"));
  EXPECT_NO_THROW(find(ms, "STATIC_128"));
  EXPECT_NO_THROW(find(ms, "GUIDED_2"));
  // dynamic,1 grabs the counter per iteration: costlier than dynamic,128.
  EXPECT_GT(find(ms, "DYNAMIC_1").overhead_us.mean(),
            find(ms, "DYNAMIC_128").overhead_us.mean());
  // plain static has the least dispatch work of all.
  EXPECT_LE(find(ms, "STATIC").overhead_us.mean(),
            find(ms, "DYNAMIC_1").overhead_us.mean());
}

TEST(Epcc, ArraybenchCopyCostsOrdering) {
  const auto ms = run_part(core::PathKind::kRtk, 8,
                           [](Suite& s) { return s.run_arraybench(); });
  const double priv = find(ms, "PRIVATE_59049").overhead_us.mean();
  const double first = find(ms, "FIRSTPRIVATE_59049").overhead_us.mean();
  // firstprivate copies the array on every thread: clearly pricier.
  EXPECT_GT(first, priv);
}

TEST(Epcc, TaskbenchRuns) {
  const auto ms = run_part(core::PathKind::kRtk, 4,
                           [](Suite& s) { return s.run_taskbench(); });
  for (const char* name :
       {"PARALLEL_TASK", "MASTER_TASK", "MASTER_TASK_BUSY_SLAVES",
        "CONDITIONAL_TASK", "TASK_WAIT", "TASK_BARRIER", "NESTED_TASK",
        "NESTED_MASTER_TASK", "BENCH_TASK_TREE", "LEAF_TASK_TREE"}) {
    EXPECT_NO_THROW(find(ms, name)) << name;
  }
}

TEST(Epcc, PikJitterLowerThanLinux) {
  // §6.1: "PIK experiences considerably lower variation in overhead".
  auto cv_of = [&](core::PathKind path) {
    const auto ms =
        run_part(path, 16, [](Suite& s) { return s.run_syncbench(); });
    return find(ms, "BARRIER").overhead_us.cv();
  };
  EXPECT_LT(cv_of(core::PathKind::kPik), cv_of(core::PathKind::kLinuxOmp) + 1e-9);
}

TEST(Epcc, FormatTableMentionsConstructs) {
  const auto ms = run_part(core::PathKind::kPik, 4,
                           [](Suite& s) { return s.run_arraybench(); });
  const std::string table = format_table("(a) ARRAY", ms);
  EXPECT_NE(table.find("FIRSTPRIVATE"), std::string::npos);
  EXPECT_NE(table.find("(a) ARRAY"), std::string::npos);
}

}  // namespace
}  // namespace kop::epcc
