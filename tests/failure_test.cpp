// Failure injection: the stack must fail loudly and precisely --
// deadlocks are detected and named, exceptions propagate out of
// fibers, misconfigured paths are rejected, resources survive
// exhaustion, and oversubscription still makes progress.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "harness/experiment.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "osal/sync.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop {
namespace {

TEST(Failure, ExceptionInSimThreadPropagatesToRun) {
  sim::Engine engine;
  auto* t = engine.spawn("thrower", [] {
    throw std::runtime_error("app exploded");
  });
  engine.wake(t);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Failure, AbbaDeadlockIsDetectedAndNamed) {
  sim::Engine engine;
  nautilus::NautilusKernel nk(engine, hw::phi());
  osal::Mutex a(nk), b(nk);
  nk.spawn_thread(
      "locker-ab",
      [&] {
        a.lock();
        engine.sleep_for(1000);
        b.lock();  // never succeeds
        b.unlock();
        a.unlock();
      },
      0);
  nk.spawn_thread(
      "locker-ba",
      [&] {
        b.lock();
        engine.sleep_for(1000);
        a.lock();  // never succeeds
        a.unlock();
        b.unlock();
      },
      1);
  try {
    engine.run();
    FAIL() << "expected SimDeadlock";
  } catch (const sim::SimDeadlock& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("locker-ab"), std::string::npos);
    EXPECT_NE(what.find("locker-ba"), std::string::npos);
  }
}

// Failure detection must hold under *every* scheduling policy, not
// just the FIFO order the tests above happen to exercise: a fuzzer
// that explores schedules is only useful if deadlocks and fiber
// exceptions stay loud on each of them.
class FailureUnderPolicy
    : public ::testing::TestWithParam<sim::SchedPolicy> {};

TEST_P(FailureUnderPolicy, AbbaDeadlockIsDetectedAndNamed) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::SchedConfig sched;
    sched.policy = GetParam();
    sched.seed = seed;
    sim::Engine engine(42, sched);
    nautilus::NautilusKernel nk(engine, hw::phi());
    osal::Mutex a(nk), b(nk);
    nk.spawn_thread(
        "locker-ab",
        [&] {
          a.lock();
          engine.sleep_for(1000);
          b.lock();
          b.unlock();
          a.unlock();
        },
        0);
    nk.spawn_thread(
        "locker-ba",
        [&] {
          b.lock();
          engine.sleep_for(1000);
          a.lock();
          a.unlock();
          b.unlock();
        },
        1);
    try {
      engine.run();
      FAIL() << "expected SimDeadlock (seed " << seed << ")";
    } catch (const sim::SimDeadlock& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("locker-ab"), std::string::npos) << what;
      EXPECT_NE(what.find("locker-ba"), std::string::npos) << what;
      // The message must carry the schedule so the hang replays.
      EXPECT_NE(what.find(sim::sched_policy_name(sched.policy)),
                std::string::npos)
          << what;
    }
  }
}

TEST_P(FailureUnderPolicy, FiberExceptionPropagatesToRun) {
  sim::SchedConfig sched;
  sched.policy = GetParam();
  sched.seed = 3;
  sim::Engine engine(42, sched);
  auto* quiet = engine.spawn("bystander", [] {});
  auto* t = engine.spawn("thrower", [] {
    throw std::runtime_error("app exploded");
  });
  engine.wake(quiet);
  engine.wake(t);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Policies, FailureUnderPolicy,
                         ::testing::Values(sim::SchedPolicy::kRandom,
                                           sim::SchedPolicy::kPct),
                         [](const auto& info) {
                           return std::string(
                               sim::sched_policy_name(info.param));
                         });

TEST(Failure, LostCondvarSignalDeadlocksLoudly) {
  sim::Engine engine;
  nautilus::NautilusKernel nk(engine, hw::phi());
  auto gate = nk.make_wait_queue();
  nk.spawn_thread("forever", [&] { gate->wait(0); }, 0);
  EXPECT_THROW(engine.run(), sim::SimDeadlock);
}

TEST(Failure, WrongAppKindOnPathIsRejected) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kRtk;
  cfg.num_threads = 2;
  auto rtk = core::Stack::create(cfg);
  EXPECT_THROW(
      rtk->run_cck_app([](osal::Os&, virgil::Virgil&) { return 0; }),
      std::logic_error);

  cfg.path = core::PathKind::kAutoMpLinux;
  auto automp = core::Stack::create(cfg);
  EXPECT_THROW(automp->run_omp_app([](komp::Runtime&) { return 0; }),
               std::logic_error);
}

TEST(Failure, EpccOnCckPathIsRejected) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kAutoMpNautilus;
  cfg.num_threads = 4;
  cfg.app_static_bytes = 0;
  EXPECT_THROW(harness::run_epcc(cfg, harness::EpccPart::kSync),
               std::invalid_argument);
}

TEST(Failure, BuddyRecoversAfterExhaustion) {
  nautilus::BuddyAllocator buddy(0, 1ULL << 20, 4096);
  std::vector<std::uint64_t> blocks;
  try {
    for (;;) blocks.push_back(buddy.alloc(64 * 1024));
  } catch (const nautilus::BuddyError&) {
  }
  EXPECT_EQ(buddy.free_bytes(), 0u);
  // Free half, allocate again.
  for (std::size_t i = 0; i < blocks.size(); i += 2) buddy.free(blocks[i]);
  EXPECT_NO_THROW(buddy.alloc(64 * 1024));
}

TEST(Failure, OversubscribedCpusStillProgress) {
  // 8 threads pinned to one CPU on the (timesliced) Linux model.
  sim::Engine engine(5);
  linuxmodel::LinuxOs os(engine, hw::phi());
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    os.spawn_thread(
        "t" + std::to_string(i),
        [&] {
          os.compute_ns(20 * sim::kMillisecond);
          ++done;
        },
        /*cpu=*/0);
  }
  engine.run();
  EXPECT_EQ(done, 8);
  // One CPU did all the work: at least 160ms of virtual time passed.
  EXPECT_GE(engine.now(), 160 * sim::kMillisecond);
}

TEST(Failure, ZeroTripLoopAndEmptySectionsAreSafe) {
  sim::Engine engine(6);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", "4");
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());
  bool finished = false;
  nk.spawn_thread(
      "main",
      [&] {
        komp::Runtime rt(pt);
        rt.parallel([&](komp::TeamThread& tt) {
          tt.for_loop(komp::Schedule::kDynamic, 1, 0, 0,
                      [&](std::int64_t, std::int64_t) { ADD_FAILURE(); });
          tt.sections({});
          tt.taskwait();  // no tasks: immediate
        });
        finished = true;
      },
      0);
  engine.run();
  EXPECT_TRUE(finished);
}

TEST(Failure, SetNumThreadsRejectsNonPositive) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = 2;
  auto stack = core::Stack::create(cfg);
  stack->run_omp_app([](komp::Runtime& rt) {
    EXPECT_THROW(rt.set_num_threads(0), std::invalid_argument);
    EXPECT_THROW(rt.set_num_threads(-3), std::invalid_argument);
    rt.set_num_threads(100000);  // clamped to the machine
    EXPECT_EQ(rt.max_threads(), 64);
    return 0;
  });
}

TEST(Failure, UnknownMachineAndBenchmarkNamesThrow) {
  core::StackConfig cfg;
  cfg.machine = "cray-1";
  EXPECT_THROW(core::Stack::create(cfg), std::invalid_argument);
  EXPECT_THROW(nas::by_name("HPL"), std::invalid_argument);
}

TEST(Failure, LatchMisuseThrows) {
  sim::Engine engine(8);
  nautilus::NautilusKernel nk(engine, hw::phi());
  EXPECT_THROW(virgil::CountdownLatch(nk, -1), std::invalid_argument);
}

}  // namespace
}  // namespace kop
