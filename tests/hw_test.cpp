// Unit tests for machine topology, the topology tree, the translation/fault cost model,
// the execution model, and the CPU resource.
#include <gtest/gtest.h>

#include "hw/cost_params.hpp"
#include "hw/cpu.hpp"
#include "hw/exec_model.hpp"
#include "hw/memory.hpp"
#include "hw/topo_tree.hpp"
#include "hw/topology.hpp"

namespace kop::hw {
namespace {

TEST(Topology, PhiShape) {
  const MachineConfig m = phi();
  EXPECT_EQ(m.num_cpus, 64);
  EXPECT_EQ(m.zones.size(), 2u);
  EXPECT_EQ(m.zones[1].kind, ZoneKind::kMcdram);
  EXPECT_TRUE(m.zones[1].cpus.empty());
  // Every CPU prefers DRAM (flat-mode MCDRAM is distant).
  EXPECT_EQ(m.preferred_dram_zone(0), 0);
  EXPECT_EQ(m.preferred_dram_zone(63), 0);
}

TEST(Topology, Xeon8Shape) {
  const MachineConfig m = xeon8();
  EXPECT_EQ(m.num_cpus, 192);
  EXPECT_EQ(m.num_sockets, 8);
  EXPECT_EQ(m.zones.size(), 8u);
  EXPECT_EQ(m.zone_of_cpu(0), 0);
  EXPECT_EQ(m.zone_of_cpu(191), 7);
  EXPECT_EQ(m.distance(0, 0), 10);
  EXPECT_EQ(m.distance(0, 7), 21);
  EXPECT_DOUBLE_EQ(m.numa_penalty(0, 7), 2.1);
}

TEST(Topology, ByNameAndValidation) {
  EXPECT_EQ(machine_by_name("phi").name, "phi");
  EXPECT_EQ(machine_by_name("8xeon").name, "8xeon");
  EXPECT_THROW(machine_by_name("cray"), std::invalid_argument);

  MachineConfig bad = phi();
  bad.zones[0].cpus.pop_back();  // cpu 63 now uncovered
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Topology, AsymmetricDistanceMatrixRejected) {
  // ACPI SLIT matrices are symmetric; a lopsided hand-edited one must
  // not survive validate() (TopoTree sorts victims by these rows).
  MachineConfig bad = xeon8();
  bad.zone_distance[2][5] = 17;  // [5][2] still 21
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.zone_distance[5][2] = 17;  // symmetric again
  EXPECT_NO_THROW(bad.validate());
}

TEST(TopoTreeTest, PhiMcdramZoneHasNoCpus) {
  // CPU-less zones (flat-mode MCDRAM) exist in the tree but own no
  // CPUs, so no steal order or team shard ever maps onto them.
  const TopoTree tree(phi());
  EXPECT_EQ(tree.num_zones(), 2);
  EXPECT_EQ(tree.num_cpus(), 64);
  EXPECT_EQ(tree.cpus_of_zone(0).size(), 64u);
  EXPECT_TRUE(tree.cpus_of_zone(1).empty());
  for (int cpu = 0; cpu < 64; ++cpu) EXPECT_EQ(tree.zone_of_cpu(cpu), 0);
  // The distance walk from the DRAM zone still lists MCDRAM last.
  EXPECT_EQ(tree.zones_by_distance(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(tree.zones_by_distance(1), (std::vector<int>{1, 0}));
}

TEST(TopoTreeTest, Xeon8ZoneOrderIsSelfThenDistanceThenId) {
  const TopoTree tree(xeon8());
  EXPECT_EQ(tree.num_zones(), 8);
  for (int z = 0; z < 8; ++z) {
    const auto& order = tree.zones_by_distance(z);
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(order[0], z);  // self first, even with uniform distances
    // Remote zones all sit at distance 21, so the tiebreak is zone id.
    std::vector<int> rest(order.begin() + 1, order.end());
    EXPECT_TRUE(std::is_sorted(rest.begin(), rest.end()));
  }
  EXPECT_EQ(tree.cpus_of_zone(3).front(), 72);
  EXPECT_EQ(tree.cpus_of_zone(3).back(), 95);
  EXPECT_EQ(tree.zone_of_cpu(95), 3);
}

TEST(TopoTreeTest, RejectsInvalidMachine) {
  // The tree re-validates on construction: asymmetric SLIT rows would
  // produce a nonsensical victim order.
  MachineConfig bad = xeon8();
  bad.zone_distance[0][1] = 11;
  EXPECT_THROW(TopoTree{bad}, std::invalid_argument);
}

TEST(Memory, TouchNewCountsPagesOnce) {
  MemRegion r("r", 10ULL << 20);
  r.set_demand_paged(true);
  r.set_page_size(PageSize::k4K);
  const std::uint64_t first = r.touch_new(1ULL << 20);
  EXPECT_EQ(first, (1ULL << 20) / 4096);
  // Touching the same span again faults nothing new.
  EXPECT_EQ(r.faulted_bytes(), 1ULL << 20);
  const std::uint64_t again = r.touch_new(1ULL << 20);
  EXPECT_EQ(r.faulted_bytes(), 2ULL << 20);
  EXPECT_EQ(again, first);
  r.reset_faults();
  EXPECT_EQ(r.faulted_bytes(), 0u);
}

TEST(Memory, NotDemandPagedNeverFaults) {
  MemRegion r("r", 1ULL << 20);
  EXPECT_EQ(r.touch_new(1ULL << 20), 0u);
}

TEST(Memory, TranslationSmallWorkingSetIsFree) {
  const TlbConfig tlb = phi().tlb;
  MemRegion r("r", 1ULL << 30);
  r.set_page_size(PageSize::k1G);
  const auto tc = translation_cost(tlb, r, 1ULL << 20, AccessPattern::kRandom);
  EXPECT_DOUBLE_EQ(tc.tlb_miss_rate, 0.0);
}

TEST(Memory, TranslationHugeVsSmallPages) {
  const TlbConfig tlb = phi().tlb;
  const std::uint64_t ws = 400ULL << 20;

  MemRegion small("s", 1ULL << 30);
  small.set_page_size(PageSize::k4K);
  MemRegion huge("h", 1ULL << 30);
  huge.set_page_size(PageSize::k1G);

  const auto ts = translation_cost(tlb, small, ws, AccessPattern::kRandom);
  const auto th = translation_cost(tlb, huge, ws, AccessPattern::kRandom);
  EXPECT_GT(ts.tlb_miss_rate, 0.9);
  EXPECT_DOUBLE_EQ(th.tlb_miss_rate, 0.0);  // 4x1G reach covers 400MB
}

TEST(Memory, StreamingMissesAreRarePerAccess) {
  const TlbConfig tlb = phi().tlb;
  MemRegion r("r", 1ULL << 30);
  r.set_page_size(PageSize::k2M);
  const std::uint64_t ws = 400ULL << 20;
  const auto stream = translation_cost(tlb, r, ws, AccessPattern::kStreaming);
  const auto rand = translation_cost(tlb, r, ws, AccessPattern::kRandom);
  EXPECT_LT(stream.tlb_miss_rate, rand.tlb_miss_rate / 100.0);
}

TEST(Memory, SlicedZonePartitions) {
  MemRegion r("r", 64ULL << 20);
  r.set_slice_zones({0, 0, 1, 1});
  EXPECT_TRUE(r.is_sliced());
  EXPECT_EQ(r.zone_for_partition(0, 4), 0);
  EXPECT_EQ(r.zone_for_partition(3, 4), 1);
  EXPECT_EQ(r.zone_for_partition(0, 2), 0);
  EXPECT_EQ(r.zone_for_partition(1, 2), 1);
}

TEST(ExecModel, NumaPenaltyScalesMemoryTime) {
  const MachineConfig m = xeon8();
  const OsCosts costs = nautilus_costs(m);
  ExecModel em(m, costs);
  sim::Rng rng(1);

  MemRegion r("r", 1ULL << 30);
  r.set_page_size(PageSize::k1G);
  WorkBlock b;
  b.cpu_ns = 1'000'000;
  b.mem_fraction = 1.0;
  b.region = &r;

  const auto local = em.charge(b, /*cpu=*/0, /*zone=*/0, rng);
  const auto remote = em.charge(b, /*cpu=*/0, /*zone=*/7, rng);
  // Nominal time divides by the machine's perf factor; the remote
  // access pays the 2.1x SLIT penalty on top.
  const auto expected_local =
      static_cast<sim::Time>(1'000'000.0 / m.perf_factor);
  EXPECT_EQ(local.memory_ns, expected_local);
  EXPECT_NEAR(static_cast<double>(remote.memory_ns),
              static_cast<double>(expected_local) * 2.1, 2.0);
}

TEST(ExecModel, LinuxChargesFaultsNautilusDoesNot) {
  const MachineConfig m = phi();
  ExecModel linux_em(m, linux_costs(m));
  ExecModel nk_em(m, nautilus_costs(m));
  sim::Rng rng(1);

  WorkBlock b;
  b.cpu_ns = 1'000'000;
  b.mem_fraction = 0.5;
  b.bytes_touched = 64ULL << 20;
  b.working_set_bytes = 64ULL << 20;

  MemRegion lr("lr", 1ULL << 30);
  lr.set_demand_paged(true);
  lr.set_page_size(PageSize::k2M);
  lr.set_small_page_fraction(0.2);
  b.region = &lr;
  const auto lc = linux_em.charge(b, 0, 0, rng);
  EXPECT_GT(lc.fault_ns, 0);

  MemRegion nr("nr", 1ULL << 30);
  nr.set_page_size(PageSize::k1G);
  b.region = &nr;
  const auto nc = nk_em.charge(b, 0, 0, rng);
  EXPECT_EQ(nc.fault_ns, 0);
  EXPECT_EQ(nc.tlb_ns, 0);
  EXPECT_EQ(nc.noise_ns, 0);
}

TEST(ExecModel, NoiseOnlyOnNoisyOs) {
  const MachineConfig m = phi();
  ExecModel linux_em(m, linux_costs(m));
  sim::Rng rng(7);
  WorkBlock b;
  b.cpu_ns = 100 * sim::kMillisecond;
  const auto c = linux_em.charge(b, 0, -1, rng);
  EXPECT_GT(c.noise_ns, 0);
  EXPECT_GT(c.tick_ns, 0);
}

TEST(Cpu, ExclusiveOccupancySerializes) {
  sim::Engine eng;
  Cpu cpu(eng, 0, sim::kTimeNever, 0);
  sim::Time done_a = 0, done_b = 0;
  auto* a = eng.spawn("a", [&] {
    cpu.occupy(1000);
    done_a = eng.now();
  });
  auto* b = eng.spawn("b", [&] {
    cpu.occupy(1000);
    done_b = eng.now();
  });
  eng.wake(a);
  eng.wake(b);
  eng.run();
  // Two 1000ns occupations of one CPU take 2000ns total.
  EXPECT_EQ(std::max(done_a, done_b), 2000);
  EXPECT_EQ(cpu.busy_time(), 2000);
}

TEST(Cpu, TimeslicePreemptsLongRun) {
  sim::Engine eng;
  Cpu cpu(eng, 0, /*timeslice=*/100, /*context_switch=*/10);
  sim::Time done_long = 0, done_short = 0;
  auto* lng = eng.spawn("long", [&] {
    cpu.occupy(1000);
    done_long = eng.now();
  });
  auto* sht = eng.spawn("short", [&] {
    eng.sleep_for(10);  // arrive second
    cpu.occupy(50);
    done_short = eng.now();
  });
  eng.wake(lng);
  eng.wake(sht);
  eng.run();
  // The short task must not wait for the full long occupation.
  EXPECT_LT(done_short, done_long);
}

}  // namespace
}  // namespace kop::hw
