// Cross-module integration tests: full stacks running scaled-down NAS
// workloads on every path, checking the paper's qualitative claims.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/table.hpp"

namespace kop::harness {
namespace {

// A scaled-down benchmark so integration runs stay fast.
nas::BenchmarkSpec scaled(nas::BenchmarkSpec b, double factor,
                          int timesteps = 2) {
  b.timesteps = timesteps;
  for (auto& l : b.loops) l.per_iter_ns *= factor;
  b.serial_ns_per_step *= factor;
  return b;
}

core::StackConfig config(core::PathKind path, int threads,
                         const std::string& machine = "phi") {
  core::StackConfig cfg;
  cfg.machine = machine;
  cfg.path = path;
  cfg.num_threads = threads;
  cfg.nk_first_touch = want_first_touch(machine, threads);
  return cfg;
}

TEST(Integration, AllFivePathsRunBt) {
  const auto spec = scaled(nas::bt(), 0.01);
  for (auto path :
       {core::PathKind::kLinuxOmp, core::PathKind::kRtk, core::PathKind::kPik,
        core::PathKind::kAutoMpLinux, core::PathKind::kAutoMpNautilus}) {
    const auto r = run_nas(config(path, 8), spec);
    EXPECT_GT(r.timed_seconds, 0.0) << core::path_name(path);
  }
}

TEST(Integration, RtkBeatsLinuxOnMemoryHeavyNas) {
  const auto spec = scaled(nas::bt(), 0.02);
  const double linux_t =
      run_nas(config(core::PathKind::kLinuxOmp, 8), spec).timed_seconds;
  const double rtk_t =
      run_nas(config(core::PathKind::kRtk, 8), spec).timed_seconds;
  EXPECT_LT(rtk_t, linux_t);
}

TEST(Integration, PikBetweenLinuxAndRtk) {
  const auto spec = scaled(nas::sp(), 0.01);
  const double linux_t =
      run_nas(config(core::PathKind::kLinuxOmp, 8), spec).timed_seconds;
  const double pik_t =
      run_nas(config(core::PathKind::kPik, 8), spec).timed_seconds;
  const double rtk_t =
      run_nas(config(core::PathKind::kRtk, 8), spec).timed_seconds;
  EXPECT_LT(rtk_t, linux_t);
  EXPECT_LE(pik_t, linux_t * 1.02);
  EXPECT_GE(pik_t, rtk_t * 0.9);
}

TEST(Integration, ParallelScalingSpeedsUpNas) {
  const auto spec = scaled(nas::ft(), 0.02);
  const double t1 =
      run_nas(config(core::PathKind::kRtk, 1), spec).timed_seconds;
  const double t8 =
      run_nas(config(core::PathKind::kRtk, 8), spec).timed_seconds;
  EXPECT_GT(t1 / t8, 4.0);  // decent scaling at 8 threads
}

TEST(Integration, AutompLosesOnPrivatizationBenchmarksWinsOnSkewed) {
  // BT: 3 of 4 loops sequential under AutoMP -> much slower than OMP.
  const auto bt_spec = scaled(nas::bt(), 0.01);
  const double bt_omp =
      run_nas(config(core::PathKind::kLinuxOmp, 16), bt_spec).timed_seconds;
  const double bt_automp =
      run_nas(config(core::PathKind::kAutoMpLinux, 16), bt_spec).timed_seconds;
  EXPECT_GT(bt_automp, bt_omp * 1.5);

  // CG: skewed spmv + coarse OMP static chunking -> AutoMP wins.
  const auto cg_spec = scaled(nas::cg(), 0.01);
  const double cg_omp =
      run_nas(config(core::PathKind::kLinuxOmp, 16), cg_spec).timed_seconds;
  const double cg_automp =
      run_nas(config(core::PathKind::kAutoMpLinux, 16), cg_spec).timed_seconds;
  EXPECT_LT(cg_automp, cg_omp);
}

TEST(Integration, FirstTouchHelpsOn8Xeon) {
  // §6.3: immediate single-zone allocation hurts once threads span
  // sockets; the first-touch-at-2MB extension fixes it.
  auto spec = scaled(nas::mg(), 0.005, 1);
  auto cfg_no_ft = config(core::PathKind::kRtk, 96, "8xeon");
  cfg_no_ft.nk_first_touch = false;
  auto cfg_ft = config(core::PathKind::kRtk, 96, "8xeon");
  cfg_ft.nk_first_touch = true;
  const double without = run_nas(cfg_no_ft, spec).timed_seconds;
  const double with_ft = run_nas(cfg_ft, spec).timed_seconds;
  EXPECT_LT(with_ft, without);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto spec = scaled(nas::ep(), 0.01);
  const auto cfg = config(core::PathKind::kLinuxOmp, 4);
  const double a = run_nas(cfg, spec).timed_seconds;
  const double b = run_nas(cfg, spec).timed_seconds;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Integration, SeedChangesNoiseButNotKernelPaths) {
  const auto spec = scaled(nas::ep(), 0.01);
  auto cfg1 = config(core::PathKind::kLinuxOmp, 4);
  auto cfg2 = cfg1;
  cfg2.seed = 1234;
  // Linux has stochastic noise: different seeds -> different times.
  EXPECT_NE(run_nas(cfg1, spec).timed_seconds,
            run_nas(cfg2, spec).timed_seconds);
  // Nautilus is noise-free: identical.
  auto nk1 = config(core::PathKind::kRtk, 4);
  auto nk2 = nk1;
  nk2.seed = 1234;
  EXPECT_DOUBLE_EQ(run_nas(nk1, spec).timed_seconds,
                   run_nas(nk2, spec).timed_seconds);
}

TEST(Harness, TableFormatsAligned) {
  Table t({"bench", "threads", "time"});
  t.add_row({"BT-B", "64", Table::seconds(12.345)});
  t.add_row({"FT-B", "8", Table::seconds(1.5)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("BT-B"), std::string::npos);
  EXPECT_NE(s.find("12.35s"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Harness, Scales) {
  EXPECT_EQ(phi_scales().back(), 64);
  EXPECT_EQ(xeon_scales().back(), 192);
  EXPECT_TRUE(want_first_touch("8xeon", 48));
  EXPECT_FALSE(want_first_touch("8xeon", 24));
  EXPECT_FALSE(want_first_touch("phi", 64));
}

}  // namespace
}  // namespace kop::harness

// Appended coverage: table CSV export.
namespace kop::harness {
namespace {

TEST(Harness, TableCsvEscapesAndAligns) {
  Table t({"bench", "note"});
  t.add_row({"BT-B", "needs class B, \"boot image\" limit"});
  t.add_row({"FT,B", "ok"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("bench,note\n"), std::string::npos);
  EXPECT_NE(csv.find("\"needs class B, \"\"boot image\"\" limit\""),
            std::string::npos);
  EXPECT_NE(csv.find("\"FT,B\",ok\n"), std::string::npos);
}

TEST(Harness, ScaleSuitePreservesIntensityAndTotals) {
  auto base = nas::bt();
  auto scaled = scale_suite({base}, 2.0, 4)[0];
  EXPECT_EQ(scaled.timesteps, 4);
  // Total nominal work preserved: factor 2 x steps 8->4.
  EXPECT_NEAR(scaled.base_work_ns(), base.base_work_ns(), base.base_work_ns() * 1e-6);
  // Access intensity (bytes per ns) preserved per loop.
  for (std::size_t i = 0; i < base.loops.size(); ++i) {
    const double before = static_cast<double>(base.loops[i].bytes_per_iter) /
                          base.loops[i].per_iter_ns;
    const double after =
        static_cast<double>(scaled.loops[i].bytes_per_iter) /
        scaled.loops[i].per_iter_ns;
    EXPECT_NEAR(before, after, before * 0.01) << base.loops[i].name;
  }
}

}  // namespace
}  // namespace kop::harness
