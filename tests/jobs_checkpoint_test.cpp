// Checkpointed JobRunner sweeps must be indistinguishable from cold
// ones everywhere a caller can look: per-point results, cache contents,
// and rendered JSON are byte-identical between `--jobs 2 --checkpoint`
// and `--jobs 1 --no-checkpoint`.  This is also the regression net for
// the forked-child teardown hazards: children report over a pipe and
// _exit, so they must never flush a MetricsSink or store cache entries
// of their own (any double store would show up as a cache diff here).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/forkrun.hpp"
#include "harness/jobs/runner.hpp"
#include "harness/metrics.hpp"
#include "nas/specs.hpp"

namespace {

namespace fs = std::filesystem;
namespace jobs = kop::harness::jobs;
using kop::core::PathKind;

// Two prefixes x three suffixes: the smallest matrix where checkpoint
// mode forks more than one child under more than one warm prefix.
std::vector<jobs::PointSpec> prefix_shared_matrix() {
  std::vector<jobs::PointSpec> points;
  for (const char* bench : {"EP", "CG"}) {
    for (int ts : {1, 2}) {
      jobs::PointSpec p;
      p.kind = jobs::PointSpec::Kind::kNas;
      p.machine = "phi";
      p.path = PathKind::kRtk;
      p.threads = 2;
      p.nas = kop::harness::scale_suite({kop::nas::by_name(bench)}, 0.05, ts)[0];
      points.push_back(p);
    }
    jobs::PointSpec scaled = points.back();
    scaled.cost_scales.push_back({"nautilus.wake_latency_ns", 0.5});
    points.push_back(scaled);
  }
  return points;
}

// Every regular file under `dir`: relative path -> bytes.
std::map<std::string, std::string> dir_contents(const fs::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    out[fs::relative(e.path(), dir).string()] = bytes.str();
  }
  return out;
}

TEST(JobsCheckpoint, ForkedSweepByteIdenticalToColdSweep) {
  const std::vector<jobs::PointSpec> points = prefix_shared_matrix();
  const fs::path base =
      fs::temp_directory_path() / "kop_jobs_checkpoint_test";
  fs::remove_all(base);

  jobs::JobOptions warm_opts;
  warm_opts.jobs = 2;
  warm_opts.checkpoint = true;
  warm_opts.cache_dir = (base / "warm").string();
  jobs::JobRunner warm(warm_opts);
  const std::vector<jobs::PointResult> warm_results = warm.run(points);

  jobs::JobOptions cold_opts;
  cold_opts.jobs = 1;
  cold_opts.checkpoint = false;
  cold_opts.cache_dir = (base / "cold").string();
  jobs::JobRunner cold(cold_opts);
  const std::vector<jobs::PointResult> cold_results = cold.run(points);

  ASSERT_EQ(warm_results.size(), points.size());
  ASSERT_EQ(cold_results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_FALSE(warm_results[i].failed) << warm_results[i].error;
    ASSERT_FALSE(cold_results[i].failed) << cold_results[i].error;
    EXPECT_EQ(jobs::ResultCache::encode(points[i], warm_results[i]),
              jobs::ResultCache::encode(points[i], cold_results[i]))
        << "point " << i << " (" << points[i].label() << ")";
  }

  // The JSON artifact a figure binary would write is byte-identical.
  auto render = [&](const std::vector<jobs::PointResult>& results) {
    kop::harness::MetricsSink sink("jobs_checkpoint_test");
    for (const auto& r : results) sink.add(r.metrics);
    return sink.to_json();
  };
  EXPECT_EQ(render(warm_results), render(cold_results));

  // Cache hygiene: only the parent stores entries (a forked child that
  // flushed anything would leave extra or differing files), and the
  // warm cache is file-for-file the cold cache.
  const auto warm_files = dir_contents(base / "warm");
  const auto cold_files = dir_contents(base / "cold");
  EXPECT_EQ(warm_files.size(), cold_files.size());
  EXPECT_EQ(warm_files, cold_files);

  // When fork is available the warm run really did share prefixes.
  EXPECT_EQ(warm.stats().executed, cold.stats().executed);
  if (jobs::checkpoint_supported()) {
    EXPECT_GT(warm.stats().prefixes, 0u);
    EXPECT_GT(warm.stats().forked, 0u);
  } else {
    EXPECT_EQ(warm.stats().forked, 0u);  // degraded cold, still correct
  }
  EXPECT_EQ(cold.stats().forked, 0u);
  fs::remove_all(base);
}

// A second checkpointed pass over a warm cache serves every point from
// disk without forking anything.
TEST(JobsCheckpoint, WarmCacheShortCircuitsForking) {
  const std::vector<jobs::PointSpec> points = prefix_shared_matrix();
  const fs::path dir =
      fs::temp_directory_path() / "kop_jobs_checkpoint_warm_cache";
  fs::remove_all(dir);
  jobs::JobOptions opts;
  opts.jobs = 2;
  opts.checkpoint = true;
  opts.cache_dir = dir.string();
  const std::vector<jobs::PointResult> first = jobs::JobRunner(opts).run(points);

  jobs::JobRunner second(opts);
  const std::vector<jobs::PointResult> replay = second.run(points);
  EXPECT_EQ(second.stats().executed, 0u);
  EXPECT_EQ(second.stats().forked, 0u);
  EXPECT_EQ(second.stats().cache_hits, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(jobs::ResultCache::encode(points[i], replay[i]),
              jobs::ResultCache::encode(points[i], first[i]));
  }
  fs::remove_all(dir);
}

}  // namespace
