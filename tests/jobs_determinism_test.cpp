// Determinism regression for the experiment job layer: figure output
// (rendered tables AND the --json artifact) must be byte-identical
// whether points run serially, on a parallel pool, or out of a warm
// result cache.  Reduced Fig. 9 (NAS normalized sweep) and Fig. 13
// (EPCC three-path comparison) matrices keep the test fast.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/metrics.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
using kop::harness::MetricsSink;
using kop::harness::jobs::JobOptions;

struct FigureOutput {
  std::string text;
  std::string json;
};

FigureOutput reduced_fig09(const JobOptions& jopts) {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(2);
  MetricsSink sink("jobs_determinism_fig09");
  FigureOutput out;
  out.text = kop::harness::print_nas_normalized(
      "Figure 9 (reduced): NAS, RTK vs Linux on PHI", "phi",
      {PathKind::kRtk}, {1, 4}, suite, &sink, jopts);
  out.json = sink.to_json();
  return out;
}

FigureOutput reduced_fig13(const JobOptions& jopts) {
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = 2;
  cfg.inner_iters = 4;
  cfg.sched_iters_per_thread = 16;
  cfg.tasks_per_thread = 4;
  cfg.tree_depth = 4;
  MetricsSink sink("jobs_determinism_fig13");
  FigureOutput out;
  out.text = kop::harness::print_epcc_figure(
      "Figure 13 (reduced): EPCC, RTK and PIK vs Linux on 8XEON", "8xeon", 8,
      {PathKind::kLinuxOmp, PathKind::kRtk, PathKind::kPik}, cfg, &sink,
      jopts);
  out.json = sink.to_json();
  return out;
}

JobOptions with_jobs(int jobs) {
  JobOptions o;
  o.jobs = jobs;
  return o;
}

TEST(JobsDeterminism, Fig09ByteIdenticalAcrossJobsLevels) {
  const auto serial = reduced_fig09(with_jobs(1));
  const auto parallel = reduced_fig09(with_jobs(4));
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.json, parallel.json);
  // Sanity: the figure actually rendered rows.
  EXPECT_NE(serial.text.find("geomean normalized performance [rtk]"),
            std::string::npos);
}

TEST(JobsDeterminism, Fig13ByteIdenticalAcrossJobsLevels) {
  const auto serial = reduced_fig13(with_jobs(1));
  const auto parallel = reduced_fig13(with_jobs(4));
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.json, parallel.json);
  EXPECT_NE(serial.text.find("(c) SYNCH"), std::string::npos);
}

TEST(JobsDeterminism, WarmCacheReprintsByteIdentically) {
  const fs::path dir =
      fs::temp_directory_path() / "kop_jobs_determinism_cache";
  fs::remove_all(dir);
  JobOptions cached = with_jobs(4);
  cached.cache_dir = dir.string();

  // Cold: simulates and stores; warm: every point replays from disk
  // (through the %.17g round-trip) -- both NAS timings and EPCC sample
  // vectors must reprint exactly.
  const auto cold09 = reduced_fig09(cached);
  const auto warm09 = reduced_fig09(cached);
  EXPECT_EQ(cold09.text, warm09.text);
  EXPECT_EQ(cold09.json, warm09.json);

  const auto cold13 = reduced_fig13(cached);
  const auto warm13 = reduced_fig13(cached);
  EXPECT_EQ(cold13.text, warm13.text);
  EXPECT_EQ(cold13.json, warm13.json);

  // And the cache state never leaks into stdout-visible output.
  EXPECT_EQ(cold09.text, reduced_fig09(with_jobs(1)).text);
  fs::remove_all(dir);
}

}  // namespace
