// Experiment job subsystem tests: PointSpec canonical forms and
// content hashes, the cost-model fingerprint, the on-disk ResultCache
// (hit / invalidation / corruption recovery), the JobRunner pool
// (input-order results, dedup, failure capture + retry), and the
// thread-safety smoke for concurrent run_nas into one MetricsSink
// (run under -DKOP_SANITIZE=thread in CI).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/point.hpp"
#include "harness/jobs/runner.hpp"
#include "harness/metrics.hpp"
#include "telemetry/metrics.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
using kop::harness::EpccPart;
using kop::harness::MetricsSink;
using kop::harness::RunMetrics;
using kop::harness::jobs::JobOptions;
using kop::harness::jobs::JobRunner;
using kop::harness::jobs::PointMatrix;
using kop::harness::jobs::PointResult;
using kop::harness::jobs::PointSpec;
using kop::harness::jobs::ResultCache;

// A NAS point cheap enough to simulate many times in a unit test.
PointSpec tiny_nas_point(PathKind path = PathKind::kLinuxOmp, int threads = 2) {
  PointSpec p;
  p.kind = PointSpec::Kind::kNas;
  p.machine = "phi";
  p.path = path;
  p.threads = threads;
  p.nas = kop::harness::scale_suite({kop::nas::ep()}, 0.1, 1)[0];
  return p;
}

PointSpec tiny_epcc_point(PathKind path = PathKind::kLinuxOmp,
                          int threads = 2) {
  PointSpec p;
  p.kind = PointSpec::Kind::kEpcc;
  p.machine = "phi";
  p.path = path;
  p.threads = threads;
  p.epcc_part = EpccPart::kSync;
  p.epcc.outer_reps = 2;
  p.epcc.inner_iters = 2;
  return p;
}

// Fresh scratch dir per test; removed up front so reruns start cold.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("kop_jobs_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// --- canonical form and hashing --------------------------------------

TEST(PointSpec, CanonicalIsStableAndStartsWithVersionTag) {
  const PointSpec p = tiny_nas_point();
  EXPECT_EQ(p.canonical(), p.canonical());
  EXPECT_EQ(p.canonical().rfind("point-v1|", 0), 0u);
  EXPECT_EQ(p.content_hash(), kop::harness::jobs::fnv1a64(p.canonical()));
}

TEST(PointSpec, EveryAxisChangesTheCanonicalForm) {
  const PointSpec base = tiny_nas_point();
  std::set<std::string> forms = {base.canonical()};

  PointSpec p = base;
  p.threads = 4;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.path = PathKind::kRtk;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.machine = "8xeon";
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.first_touch = 0;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.first_touch = 1;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.rtk_use_pte = true;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.seed = 7;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  // NUMA-scheduler knobs move the fingerprint, and only when set: the
  // defaults keep historical canonical bytes (append-when-non-default,
  // like cost_scales), so pre-existing caches stay valid.
  EXPECT_EQ(base.canonical().find("numa="), std::string::npos);
  EXPECT_EQ(base.canonical().find("migrate="), std::string::npos);
  p = base;
  p.numa_sched_hier = true;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.numa_migrate = true;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.numa_sched_hier = true;
  p.numa_migrate = true;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  // Workload parameters: a different --scale factor must not alias.
  p = base;
  p.nas.loops[0].per_iter_ns *= 2.0;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  p = base;
  p.nas.timesteps += 1;
  EXPECT_TRUE(forms.insert(p.canonical()).second);
  // EPCC points are a different family entirely.
  EXPECT_TRUE(forms.insert(tiny_epcc_point().canonical()).second);
  PointSpec e = tiny_epcc_point();
  e.epcc.inner_iters = 3;
  EXPECT_TRUE(forms.insert(e.canonical()).second);
  e = tiny_epcc_point();
  e.epcc_part = EpccPart::kSched;
  EXPECT_TRUE(forms.insert(e.canonical()).second);
}

TEST(PointSpec, CostModelFingerprintIsStable) {
  EXPECT_EQ(kop::harness::jobs::cost_model_fingerprint(),
            kop::harness::jobs::cost_model_fingerprint());
  EXPECT_NE(kop::harness::jobs::cost_model_fingerprint(), 0u);
}

TEST(PointMatrix, DedupsAndPreservesOrder) {
  PointMatrix mx;
  const std::size_t a = mx.add(tiny_nas_point(PathKind::kLinuxOmp, 1));
  const std::size_t b = mx.add(tiny_nas_point(PathKind::kLinuxOmp, 2));
  const std::size_t a2 = mx.add(tiny_nas_point(PathKind::kLinuxOmp, 1));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(mx.size(), 2u);
  EXPECT_EQ(mx.points()[0].threads, 1);
  EXPECT_EQ(mx.points()[1].threads, 2);
}

// --- cache keying and entry format -----------------------------------

TEST(ResultCache, KeyCoversHashFingerprintAndSchemaVersion) {
  const PointSpec p = tiny_nas_point();
  const PointSpec q = tiny_nas_point(PathKind::kRtk);
  const std::uint64_t k = ResultCache::key(p);
  EXPECT_EQ(k, ResultCache::key(p));
  EXPECT_NE(k, ResultCache::key(q));
  // A cost-model recalibration (different fingerprint) must invalidate.
  EXPECT_NE(k, ResultCache::key(
                   p, kop::harness::jobs::cost_model_fingerprint() ^ 1));
  // A schema bump must invalidate.
  EXPECT_NE(k, ResultCache::key(p, kop::harness::jobs::cost_model_fingerprint(),
                                kop::telemetry::kMetricsSchemaVersion + 1));
}

TEST(ResultCache, EncodeIsValidMetricsDocumentAndDecodesExactly) {
  const PointSpec p = tiny_nas_point();
  const PointResult r = kop::harness::jobs::run_point(p);

  const std::string doc = ResultCache::encode(p, r);
  // Entries are full kop-metrics v1 documents: metrics_lint accepts
  // the cache directory.
  const auto problems = kop::telemetry::validate_metrics_json(doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());

  PointResult back;
  ASSERT_TRUE(ResultCache::decode(doc, p, &back));
  EXPECT_TRUE(back.from_cache);
  EXPECT_EQ(back.metrics.label, r.metrics.label);
  EXPECT_EQ(back.metrics.timed_seconds, r.metrics.timed_seconds);  // exact
  EXPECT_EQ(back.metrics.init_seconds, r.metrics.init_seconds);
  EXPECT_EQ(back.metrics.counters.totals, r.metrics.counters.totals);

  // The sidecar pins the canonical form: a different spec (even one
  // that hypothetically collided on the hash) is rejected.
  PointResult wrong;
  EXPECT_FALSE(ResultCache::decode(doc, tiny_nas_point(PathKind::kRtk),
                                   &wrong));
}

TEST(ResultCache, EpccSamplesRoundTrip) {
  const PointSpec p = tiny_epcc_point();
  const PointResult r = kop::harness::jobs::run_point(p);
  ASSERT_FALSE(r.epcc.empty());

  PointResult back;
  ASSERT_TRUE(ResultCache::decode(ResultCache::encode(p, r), p, &back));
  ASSERT_EQ(back.epcc.size(), r.epcc.size());
  for (std::size_t i = 0; i < r.epcc.size(); ++i) {
    EXPECT_EQ(back.epcc[i].name, r.epcc[i].name);
    EXPECT_EQ(back.epcc[i].group, r.epcc[i].group);
    EXPECT_EQ(back.epcc[i].reference, r.epcc[i].reference);
    // Bit-exact sample vectors: mean +- sd tables reprint identically.
    EXPECT_EQ(back.epcc[i].overhead_us.samples(),
              r.epcc[i].overhead_us.samples());
  }
}

TEST(ResultCache, HitOnRerunAndCorruptEntryRecovery) {
  const std::string dir = scratch_dir("corrupt");
  const PointSpec p = tiny_nas_point();
  const PointResult r = kop::harness::jobs::run_point(p);

  ResultCache cache(dir);
  PointResult out;
  EXPECT_FALSE(cache.load(p, &out));  // cold
  cache.store(p, r);
  EXPECT_TRUE(cache.load(p, &out));  // warm
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.metrics.timed_seconds, r.metrics.timed_seconds);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Corrupt the entry on disk: load degrades to a miss, never throws.
  {
    std::ofstream f(cache.entry_path(p), std::ios::trunc);
    f << "{ not json";
  }
  EXPECT_FALSE(cache.load(p, &out));
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // Re-store repairs it.
  cache.store(p, r);
  EXPECT_TRUE(cache.load(p, &out));
  fs::remove_all(dir);
}

TEST(ResultCache, TruncatedEntryRecoversAsMiss) {
  // A writer killed mid-flush leaves a prefix of valid JSON; the loader
  // must treat it as a miss and let a re-store repair it.
  const std::string dir = scratch_dir("truncated");
  const PointSpec p = tiny_nas_point();
  const PointResult r = kop::harness::jobs::run_point(p);
  ResultCache cache(dir);
  cache.store(p, r);

  std::ifstream in(cache.entry_path(p), std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(text.size(), 64u);
  std::ofstream(cache.entry_path(p), std::ios::binary | std::ios::trunc)
      << text.substr(0, text.size() / 2);

  PointResult out;
  EXPECT_FALSE(cache.load(p, &out));
  EXPECT_EQ(cache.stats().corrupt, 1u);
  cache.store(p, r);
  EXPECT_TRUE(cache.load(p, &out));
  fs::remove_all(dir);
}

TEST(ResultCache, WrongSchemaVersionRecoversAsMiss) {
  // An entry written by a future (or ancient) build sits at the right
  // path only if someone renamed it; either way the document's own
  // version stamp disqualifies it.
  const std::string dir = scratch_dir("schema");
  const PointSpec p = tiny_nas_point();
  const PointResult r = kop::harness::jobs::run_point(p);
  ResultCache cache(dir);
  cache.store(p, r);

  std::ifstream in(cache.entry_path(p), std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string stamp =
      "\"version\":" + std::to_string(kop::telemetry::kMetricsSchemaVersion);
  const auto pos = text.find(stamp);
  ASSERT_NE(pos, std::string::npos) << text.substr(0, 120);
  text.replace(
      pos, stamp.size(),
      "\"version\":" +
          std::to_string(kop::telemetry::kMetricsSchemaVersion + 1));
  std::ofstream(cache.entry_path(p), std::ios::binary | std::ios::trunc)
      << text;

  PointResult out;
  EXPECT_FALSE(cache.load(p, &out));
  EXPECT_EQ(cache.stats().corrupt, 1u);
  cache.store(p, r);
  EXPECT_TRUE(cache.load(p, &out));
  fs::remove_all(dir);
}

TEST(ResultCache, FingerprintMismatchRecoversAsMiss) {
  // Right filename, right canonical form, but the sidecar records a
  // different cost-model calibration: stale, not a hit.
  const std::string dir = scratch_dir("fingerprint");
  const PointSpec p = tiny_nas_point();
  const PointResult r = kop::harness::jobs::run_point(p);
  ResultCache cache(dir);
  cache.store(p, r);

  std::ifstream in(cache.entry_path(p), std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string fp = kop::harness::jobs::hex16(
      kop::harness::jobs::cost_model_fingerprint());
  const auto pos = text.find(fp);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, fp.size(), "00000000deadbeef");
  std::ofstream(cache.entry_path(p), std::ios::binary | std::ios::trunc)
      << text;

  PointResult out;
  EXPECT_FALSE(cache.load(p, &out));
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // The baseline reader is fingerprint-agnostic by contract and still
  // accepts the same bytes.
  PointResult cross;
  EXPECT_TRUE(ResultCache::decode(text, p, &cross,
                                  /*require_fingerprint=*/false));
  cache.store(p, r);
  EXPECT_TRUE(cache.load(p, &out));
  fs::remove_all(dir);
}

// --- runner ----------------------------------------------------------

TEST(JobRunner, ParallelResultsMatchSerialInInputOrder) {
  std::vector<PointSpec> points;
  for (int t : {1, 2, 4}) {
    points.push_back(tiny_nas_point(PathKind::kLinuxOmp, t));
    points.push_back(tiny_nas_point(PathKind::kRtk, t));
  }
  // Duplicate of points[0]: dedup must fan the same result back out.
  points.push_back(tiny_nas_point(PathKind::kLinuxOmp, 1));

  JobOptions serial;
  serial.jobs = 1;
  JobOptions parallel;
  parallel.jobs = 4;
  parallel.queue_capacity = 1;  // exercise the bounded-queue blocking

  JobRunner r1(serial);
  const auto a = r1.run(points);
  JobRunner r4(parallel);
  const auto b = r4.run(points);

  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_FALSE(a[i].failed);
    EXPECT_FALSE(b[i].failed);
    EXPECT_EQ(a[i].metrics.timed_seconds, b[i].metrics.timed_seconds) << i;
    EXPECT_EQ(a[i].metrics.counters.totals, b[i].metrics.counters.totals) << i;
  }
  EXPECT_EQ(a.back().metrics.timed_seconds, a.front().metrics.timed_seconds);
  // The duplicate was not simulated twice.
  EXPECT_EQ(r4.stats().executed, points.size() - 1);
}

TEST(JobRunner, WarmCacheSkipsSimulation) {
  const std::string dir = scratch_dir("warm");
  std::vector<PointSpec> points;
  for (int t : {1, 2, 4}) points.push_back(tiny_nas_point(PathKind::kRtk, t));

  JobOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir;
  JobRunner cold(opts);
  const auto a = cold.run(points);
  EXPECT_EQ(cold.stats().executed, points.size());
  EXPECT_EQ(cold.stats().cache_hits, 0u);

  JobRunner warm(opts);
  const auto b = warm.run(points);
  EXPECT_EQ(warm.stats().executed, 0u);
  EXPECT_EQ(warm.stats().cache_hits, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(b[i].from_cache);
    EXPECT_EQ(a[i].metrics.timed_seconds, b[i].metrics.timed_seconds);
  }

  // --no-cache bypasses the warm entries.
  opts.no_cache = true;
  JobRunner bypass(opts);
  bypass.run(points);
  EXPECT_EQ(bypass.stats().executed, points.size());
  fs::remove_all(dir);
}

TEST(JobRunner, FailureIsCapturedRetriedAndReported) {
  // EPCC on a CCK path throws (no OpenMP directives to measure, §6.1):
  // a deterministic failure the runner must capture, not propagate.
  std::vector<PointSpec> points = {tiny_nas_point(),
                                   tiny_epcc_point(PathKind::kAutoMpLinux)};
  JobRunner runner;
  const auto results = runner.run(points);
  EXPECT_FALSE(results[0].failed);
  ASSERT_TRUE(results[1].failed);
  EXPECT_NE(results[1].error.find(points[1].label()), std::string::npos);
  EXPECT_EQ(runner.stats().failures, 1u);
  EXPECT_EQ(runner.stats().retries, 1u);
  EXPECT_THROW(kop::harness::jobs::require_ok(points, results),
               std::runtime_error);
}

TEST(JobRunner, RunTasksExecutesEveryTask) {
  std::vector<int> hits(17, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i] = static_cast<int>(i) + 1; });
  }
  JobOptions opts;
  opts.jobs = 4;
  JobRunner runner(opts);
  runner.run_tasks(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], static_cast<int>(i) + 1);
  }
}

// --- cross-engine thread-safety smoke (TSan CI job) ------------------

TEST(ThreadSafety, ConcurrentRunNasIntoSharedSink) {
  // Four host threads, each booting its own stack, all recording into
  // one MetricsSink.  Under -fsanitize=thread this validates the fiber
  // annotations and the sink mutex; in a plain build it still checks
  // that results are independent of host-thread interleaving.
  const PointSpec spec = tiny_nas_point(PathKind::kPik, 2);
  const double expected =
      kop::harness::jobs::run_point(spec).metrics.timed_seconds;

  MetricsSink sink("jobs_test");
  std::vector<std::thread> threads;
  std::vector<double> timed(4, 0.0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      RunMetrics m;
      kop::harness::run_nas(spec.stack_config(), spec.nas, &m);
      timed[static_cast<std::size_t>(t)] = m.timed_seconds;
      sink.add(std::move(m));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.size(), 4u);
  for (double v : timed) EXPECT_EQ(v, expected);
}

}  // namespace
