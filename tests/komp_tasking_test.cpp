// Tests for explicit tasks: spawning, stealing, taskwait, nesting,
// barrier draining, undeferred (if-clause) tasks, task trees.
#include <gtest/gtest.h>

#include <set>

#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::komp {
namespace {

struct Fixture {
  explicit Fixture(int threads, std::uint64_t seed = 42,
                   hw::MachineConfig machine = hw::phi()) {
    engine = std::make_unique<sim::Engine>(seed);
    nk = std::make_unique<nautilus::NautilusKernel>(*engine,
                                                    std::move(machine));
    nk->set_env("OMP_NUM_THREADS", std::to_string(threads));
    pt = std::make_unique<pthread_compat::Pthreads>(
        *nk, pthread_compat::nautilus_native_tuning());
  }
  void run(const std::function<void(Runtime&)>& body) {
    nk->spawn_thread(
        "main",
        [this, body] {
          Runtime rt(*pt);
          body(rt);
        },
        0);
    engine->run();
  }
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<nautilus::NautilusKernel> nk;
  std::unique_ptr<pthread_compat::Pthreads> pt;
};

TEST(Tasking, AllTasksCompleteByRegionEnd) {
  Fixture f(8);
  int done = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      for (int k = 0; k < 10; ++k)
        tt.task([&](TeamThread& ex) {
          ex.compute_ns(1000);
          ++done;
        });
    });
    // Implicit barrier drained everything.
    EXPECT_EQ(done, 80);
  });
  EXPECT_EQ(done, 80);
}

TEST(Tasking, TaskwaitWaitsForChildrenOnly) {
  Fixture f(4);
  bool child_done_at_wait = false;
  f.run([&](Runtime& rt) {
    rt.parallel(1, [&](TeamThread& tt) {
      bool child_done = false;
      tt.task([&](TeamThread& ex) {
        ex.compute_ns(5000);
        child_done = true;
      });
      tt.taskwait();
      child_done_at_wait = child_done;
    });
  });
  EXPECT_TRUE(child_done_at_wait);
}

TEST(Tasking, MasterSpawnedTasksAreStolen) {
  Fixture f(8);
  std::set<int> executors;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        for (int k = 0; k < 64; ++k)
          tt.task([&](TeamThread& ex) {
            ex.compute_ns(20'000);
            executors.insert(ex.id());
          });
      });
      tt.barrier();
    });
  });
  EXPECT_GT(executors.size(), 1u);  // idle threads helped
}

TEST(Tasking, NestedTasksComplete) {
  Fixture f(4);
  int leaves = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        for (int k = 0; k < 8; ++k) {
          tt.task([&](TeamThread& ex) {
            for (int j = 0; j < 4; ++j)
              ex.task([&](TeamThread& ex2) {
                ex2.compute_ns(500);
                ++leaves;
              });
            ex.taskwait();
          });
        }
      });
      tt.barrier();
    });
  });
  EXPECT_EQ(leaves, 32);
}

TEST(Tasking, TaskTreeCompletes) {
  Fixture f(8);
  int nodes = 0;
  std::function<void(TeamThread&, int)> tree = [&](TeamThread& tt, int depth) {
    ++nodes;
    if (depth == 0) return;
    for (int c = 0; c < 2; ++c)
      tt.task([&tree, depth](TeamThread& ex) { tree(ex, depth - 1); });
    tt.taskwait();
  };
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] { tree(tt, 6); });
      tt.barrier();
    });
  });
  EXPECT_EQ(nodes, (1 << 7) - 1);  // 2^(d+1)-1
}

TEST(Tasking, UndeferredTaskRunsInline) {
  Fixture f(4);
  int executor = -1;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      if (tt.id() == 2)
        tt.task_if(false, [&](TeamThread& ex) { executor = ex.id(); });
    });
  });
  EXPECT_EQ(executor, 2);
}

TEST(Tasking, SingleThreadTeamRunsTasks) {
  Fixture f(1);
  int done = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      for (int k = 0; k < 5; ++k)
        tt.task([&](TeamThread&) { ++done; });
      tt.taskwait();
      EXPECT_EQ(done, 5);
    });
  });
  EXPECT_EQ(done, 5);
}

TEST(Tasking, HeavyTaskLoadBalances) {
  // 256 uneven tasks from one producer: stealing should spread the
  // wall-clock far below the serial sum.
  Fixture f(8);
  double seconds = 0;
  f.run([&](Runtime& rt) {
    const double t0 = rt.wtime();
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        for (int k = 0; k < 256; ++k)
          tt.task([k](TeamThread& ex) {
            ex.compute_ns(10'000 + (k % 7) * 3000);
          });
      });
      tt.barrier();
    });
    seconds = rt.wtime() - t0;
  });
  // Serial sum ~ 4.86ms; 8 threads should cut it well below half.
  EXPECT_LT(seconds, 0.0030);
}

TEST(Tasking, HierSchedulingCompletesAndClassifiesSteals) {
  // KOMP_NUMA_SCHED=hier on a multi-zone machine: 16 threads spread
  // over 8XEON's 8 sockets, one producer.  Every steal must be
  // classified as either local (victim in the thief's zone) or remote,
  // and the two splits must add up to the steal total.
  Fixture f(16, 42, hw::xeon8());
  f.nk->set_env("KOMP_NUMA_SCHED", "hier");
  f.nk->set_env("OMP_PROC_BIND", "spread");
  int done = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        for (int k = 0; k < 128; ++k)
          tt.task([&](TeamThread& ex) {
            ex.compute_ns(20'000);
            ++done;
          });
      });
      tt.barrier();
    });
  });
  EXPECT_EQ(done, 128);
  const auto snap = f.nk->counters().snapshot();
  const auto at = [&snap](telemetry::Counter c) {
    return snap.totals[static_cast<int>(c)];
  };
  EXPECT_GT(at(telemetry::Counter::kTaskSteals), 0u);
  EXPECT_EQ(at(telemetry::Counter::kTaskSteals),
            at(telemetry::Counter::kTaskStealsLocal) +
                at(telemetry::Counter::kTaskStealsRemote));
  // Spread binding leaves the producer's zone with one idle sibling;
  // the other 14 thieves sit across the fabric.
  EXPECT_GT(at(telemetry::Counter::kTaskStealsRemote), 0u);
}

TEST(Tasking, HierOnSingleZoneMachineStealsOnlyLocally) {
  // PHI's only CPU-bearing zone is zone 0 (MCDRAM is CPU-less), so the
  // topology walk degenerates to the flat ring: everything classifies
  // local and no remote traffic is ever recorded.
  Fixture f(8);
  f.nk->set_env("KOMP_NUMA_SCHED", "hier");
  int done = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        for (int k = 0; k < 64; ++k)
          tt.task([&](TeamThread& ex) {
            ex.compute_ns(20'000);
            ++done;
          });
      });
      tt.barrier();
    });
  });
  EXPECT_EQ(done, 64);
  const auto snap = f.nk->counters().snapshot();
  EXPECT_GT(snap.totals[static_cast<int>(telemetry::Counter::kTaskSteals)],
            0u);
  EXPECT_EQ(
      snap.totals[static_cast<int>(telemetry::Counter::kTaskStealsRemote)],
      0u);
  EXPECT_EQ(
      snap.totals[static_cast<int>(telemetry::Counter::kTaskSteals)],
      snap.totals[static_cast<int>(telemetry::Counter::kTaskStealsLocal)]);
}

}  // namespace
}  // namespace kop::komp

// Appended coverage: taskloop.
namespace kop::komp {
namespace {

TEST(Taskloop, CoversRangeExactlyOnceAndBalances) {
  Fixture f(8);
  std::map<std::int64_t, int> hits;
  std::set<int> executors;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.single([&] {
        tt.taskloop(0, 500, 10,
                    [&](TeamThread& ex, std::int64_t b, std::int64_t e) {
                      EXPECT_LE(e - b, 10);
                      executors.insert(ex.id());
                      ex.compute_ns(20'000);
                      for (std::int64_t i = b; i < e; ++i) ++hits[i];
                    });
      });
    });
  });
  ASSERT_EQ(hits.size(), 500u);
  for (const auto& [i, n] : hits) ASSERT_EQ(n, 1) << i;
  EXPECT_GT(executors.size(), 1u);  // spread over the team
}

TEST(Taskloop, DefaultGrainAndEmptyRange) {
  Fixture f(4);
  int chunks = 0;
  std::int64_t covered = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.single([&] {
        tt.taskloop(0, 0, 0, [&](TeamThread&, std::int64_t, std::int64_t) {
          ADD_FAILURE() << "empty taskloop must spawn nothing";
        });
        tt.taskloop(10, 330, 0,
                    [&](TeamThread&, std::int64_t b, std::int64_t e) {
                      ++chunks;
                      covered += e - b;
                    });
      });
    });
  });
  EXPECT_EQ(covered, 320);
  // default grain ~ total/(8*n) = 10 -> ~32 tasks
  EXPECT_GE(chunks, 16);
}

TEST(Taskloop, CompletesBeforeReturning) {
  Fixture f(4);
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] {
        int done = 0;
        tt.taskloop(0, 64, 4,
                    [&](TeamThread& ex, std::int64_t, std::int64_t) {
                      ex.compute_ns(5000);
                      ++done;
                    });
        // taskloop has an implicit taskwait (no nogroup).
        EXPECT_EQ(done, 16);
      });
    });
  });
}

}  // namespace
}  // namespace kop::komp
