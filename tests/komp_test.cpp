// Tests for the komp OpenMP runtime: ICV/env parsing, fork/join,
// worksharing schedules, barrier algorithms, single/master/critical/
// ordered/atomic, and reductions.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "komp/runtime.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::komp {
namespace {

// Fixture: a komp runtime on a Nautilus kernel.
struct Fixture {
  explicit Fixture(int threads = 0, std::uint64_t seed = 42,
                   RuntimeTuning tuning = {}) {
    engine = std::make_unique<sim::Engine>(seed);
    nk = std::make_unique<nautilus::NautilusKernel>(*engine, hw::phi());
    if (threads > 0) nk->set_env("OMP_NUM_THREADS", std::to_string(threads));
    pt = std::make_unique<pthread_compat::Pthreads>(
        *nk, pthread_compat::nautilus_native_tuning());
    tuning_ = tuning;
  }

  /// Run `body` on the app main thread with a fresh runtime.
  void run(const std::function<void(Runtime&)>& body) {
    nk->spawn_thread(
        "main",
        [this, body] {
          Runtime rt(*pt, tuning_);
          body(rt);
        },
        0);
    engine->run();
  }

  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<nautilus::NautilusKernel> nk;
  std::unique_ptr<pthread_compat::Pthreads> pt;
  RuntimeTuning tuning_;
};

TEST(Icv, ParseSchedule) {
  Schedule s = Schedule::kStatic;
  int chunk = 0;
  EXPECT_TRUE(parse_omp_schedule("dynamic,4", s, chunk));
  EXPECT_EQ(s, Schedule::kDynamic);
  EXPECT_EQ(chunk, 4);
  EXPECT_TRUE(parse_omp_schedule("GUIDED", s, chunk));
  EXPECT_EQ(s, Schedule::kGuided);
  EXPECT_TRUE(parse_omp_schedule("static,8", s, chunk));
  EXPECT_EQ(s, Schedule::kStaticChunked);
  EXPECT_FALSE(parse_omp_schedule("fancy", s, chunk));
  EXPECT_FALSE(parse_omp_schedule("dynamic,-2", s, chunk));
}

TEST(Icv, ParseBlocktime) {
  sim::Time t = 0;
  EXPECT_TRUE(parse_blocktime("200", t));
  EXPECT_EQ(t, 200 * sim::kMillisecond);
  EXPECT_TRUE(parse_blocktime("infinite", t));
  EXPECT_EQ(t, sim::kTimeNever);
  EXPECT_FALSE(parse_blocktime("soon", t));
}

TEST(Icv, EnvironmentOverrides) {
  Fixture f;
  f.nk->set_env("OMP_NUM_THREADS", "12");
  f.nk->set_env("OMP_SCHEDULE", "guided,2");
  f.nk->set_env("KMP_BLOCKTIME", "50");
  const Icv icv = icv_from_environment(*f.nk);
  EXPECT_EQ(icv.nthreads_var, 12);
  EXPECT_EQ(icv.run_sched_var, Schedule::kGuided);
  EXPECT_EQ(icv.run_sched_chunk, 2);
  EXPECT_EQ(icv.blocktime_ns, 50 * sim::kMillisecond);
}

TEST(Icv, DefaultsToAllCpus) {
  Fixture f;
  const Icv icv = icv_from_environment(*f.nk);
  EXPECT_EQ(icv.nthreads_var, 64);
}

TEST(Runtime, ParallelRunsAllThreadIds) {
  Fixture f(8);
  std::set<int> ids;
  int team_size = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      ids.insert(tt.id());
      if (tt.id() == 0) team_size = tt.nthreads();
    });
  });
  EXPECT_EQ(team_size, 8);
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 7);
}

TEST(Runtime, SequentialRegionsReuseThePool) {
  Fixture f(4);
  int total = 0;
  f.run([&](Runtime& rt) {
    for (int r = 0; r < 5; ++r)
      rt.parallel([&](TeamThread&) { ++total; });
    EXPECT_EQ(rt.pool_size(), 3);  // workers created once
  });
  EXPECT_EQ(total, 20);
}

TEST(Runtime, NumThreadsClauseAndGrowingTeams) {
  Fixture f(8);
  std::vector<int> sizes;
  f.run([&](Runtime& rt) {
    for (int n : {2, 8, 4}) {
      rt.parallel(n, [&](TeamThread& tt) {
        if (tt.id() == 0) sizes.push_back(tt.nthreads());
      });
    }
  });
  EXPECT_EQ(sizes, (std::vector<int>{2, 8, 4}));
}

TEST(Runtime, NestedParallelSerializes) {
  Fixture f(4);
  int inner_size = 0;
  f.run([&](Runtime& rt) {
    rt.parallel(2, [&](TeamThread& tt) {
      if (tt.id() == 0) {
        rt.parallel(4, [&](TeamThread& inner) {
          inner_size = inner.nthreads();
        });
      }
    });
  });
  EXPECT_EQ(inner_size, 1);
}

TEST(Runtime, WtimeTracksVirtualTime) {
  Fixture f(2);
  double dt = 0;
  f.run([&](Runtime& rt) {
    const double t0 = rt.wtime();
    rt.os().compute_ns(2 * sim::kSecond);
    dt = rt.wtime() - t0;
  });
  EXPECT_NEAR(dt, 2.0, 0.05);  // modulo the no-red-zone inflation
}

// ------------------------------------------------------- worksharing

TEST(ForLoop, StaticCoversRangeExactlyOnce) {
  Fixture f(7);
  std::map<std::int64_t, int> hits;
  std::map<std::int64_t, int> owner;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kStatic, 0, 0, 100,
                  [&](std::int64_t b, std::int64_t e) {
                    for (std::int64_t i = b; i < e; ++i) {
                      ++hits[i];
                      owner[i] = tt.id();
                    }
                  });
    });
  });
  ASSERT_EQ(hits.size(), 100u);
  for (const auto& [i, count] : hits) EXPECT_EQ(count, 1) << "iter " << i;
  // Static: each thread owns one contiguous block.
  int switches = 0;
  for (std::int64_t i = 1; i < 100; ++i)
    if (owner[i] != owner[i - 1]) ++switches;
  EXPECT_EQ(switches, 6);
}

TEST(ForLoop, StaticChunkedRoundRobins) {
  Fixture f(4);
  std::map<std::int64_t, int> owner;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kStaticChunked, 5, 0, 40,
                  [&](std::int64_t b, std::int64_t e) {
                    EXPECT_LE(e - b, 5);
                    for (std::int64_t i = b; i < e; ++i) owner[i] = tt.id();
                  });
    });
  });
  // chunk c of 5 belongs to thread (c % 4).
  for (std::int64_t i = 0; i < 40; ++i)
    EXPECT_EQ(owner[i], static_cast<int>((i / 5) % 4)) << i;
}

TEST(ForLoop, DynamicCoversAll) {
  Fixture f(8);
  std::map<std::int64_t, int> hits;
  std::set<int> participants;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kDynamic, 2, 0, 200,
                  [&](std::int64_t b, std::int64_t e) {
                    participants.insert(tt.id());
                    tt.compute_ns(5000);
                    for (std::int64_t i = b; i < e; ++i) ++hits[i];
                  });
    });
  });
  ASSERT_EQ(hits.size(), 200u);
  for (const auto& [i, count] : hits) EXPECT_EQ(count, 1);
  EXPECT_GT(participants.size(), 1u);
}

TEST(ForLoop, GuidedChunksDecrease) {
  Fixture f(4);
  std::vector<std::int64_t> chunk_sizes;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kGuided, 1, 0, 1000,
                  [&](std::int64_t b, std::int64_t e) {
                    if (tt.id() == 0) chunk_sizes.push_back(e - b);
                    tt.compute_ns(100);
                  });
    });
  });
  ASSERT_GE(chunk_sizes.size(), 2u);
  EXPECT_GE(chunk_sizes.front(), chunk_sizes.back());
  // First guided chunk ~ remaining/(2n) = 1000/8.
  EXPECT_GE(chunk_sizes.front(), 100);
}

TEST(ForLoop, EmptyAndTinyRanges) {
  Fixture f(8);
  int count = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kStatic, 0, 0, 0,
                  [&](std::int64_t, std::int64_t) { ++count; });
      tt.for_loop(Schedule::kDynamic, 1, 0, 3,
                  [&](std::int64_t b, std::int64_t e) {
                    EXPECT_EQ(e - b, 1);
                    ++count;
                  });
    });
  });
  EXPECT_EQ(count, 3);  // 0 from the empty loop + 3 dynamic chunks
}

TEST(ForLoop, DynamicBalancesSkewedWork) {
  // With per-iteration costs ramping 10x, dynamic should beat static
  // wall-clock (the MG/CG chunking story at runtime level).
  auto run_with = [](Schedule sched) {
    Fixture f(8);
    double seconds = 0;
    f.run([&](Runtime& rt) {
      const double t0 = rt.wtime();
      rt.parallel([&](TeamThread& tt) {
        tt.for_loop(sched, 1, 0, 256, [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            tt.compute_ns(10'000 + 90'000 * i / 256);
        });
      });
      seconds = rt.wtime() - t0;
    });
    return seconds;
  };
  EXPECT_LT(run_with(Schedule::kDynamic), run_with(Schedule::kStatic));
}

// ----------------------------------------------------- sync constructs

TEST(Sync, BarrierSeparatesPhases) {
  Fixture f(16);
  std::vector<int> phase1(16, 0);
  bool all_saw_phase1 = true;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.compute_ns(1000 * (tt.id() + 1));
      phase1[static_cast<std::size_t>(tt.id())] = 1;
      tt.barrier();
      for (int v : phase1)
        if (v != 1) all_saw_phase1 = false;
    });
  });
  EXPECT_TRUE(all_saw_phase1);
}

TEST(Sync, CentralizedAndTreeBarriersBothWork) {
  for (auto algo : {RuntimeTuning::BarrierAlgo::kCentralized,
                    RuntimeTuning::BarrierAlgo::kTree}) {
    RuntimeTuning tuning;
    tuning.barrier_algo = algo;
    Fixture f(13, 42, tuning);  // odd count stresses the tree
    int rounds_ok = 0;
    f.run([&](Runtime& rt) {
      rt.parallel([&](TeamThread& tt) {
        for (int r = 0; r < 10; ++r) {
          tt.compute_ns(100 * ((tt.id() + r) % 5));
          tt.barrier();
        }
        if (tt.id() == 0) rounds_ok = 10;
      });
    });
    EXPECT_EQ(rounds_ok, 10);
  }
}

TEST(Sync, SingleExecutesExactlyOnce) {
  Fixture f(8);
  int executions = 0;
  int claimed_by_someone = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      for (int r = 0; r < 20; ++r) {
        const bool ran = tt.single([&] { ++executions; });
        if (ran) ++claimed_by_someone;
      }
    });
  });
  EXPECT_EQ(executions, 20);
  EXPECT_EQ(claimed_by_someone, 20);
}

TEST(Sync, MasterOnlyThreadZero) {
  Fixture f(8);
  std::set<int> runners;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.master([&] { runners.insert(tt.id()); });
    });
  });
  EXPECT_EQ(runners, std::set<int>{0});
}

TEST(Sync, CriticalIsExclusivePerName) {
  Fixture f(8);
  int a = 0, b = 0;
  int in_a = 0, max_in_a = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      for (int r = 0; r < 5; ++r) {
        tt.critical("A", [&] {
          ++in_a;
          max_in_a = std::max(max_in_a, in_a);
          tt.compute_ns(300);
          ++a;
          --in_a;
        });
        tt.critical("B", [&] { ++b; });
      }
    });
  });
  EXPECT_EQ(a, 40);
  EXPECT_EQ(b, 40);
  EXPECT_EQ(max_in_a, 1);
}

TEST(Sync, OrderedRunsInIterationOrder) {
  Fixture f(8);
  std::vector<std::int64_t> order;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.for_ordered(0, 32, [&](std::int64_t i) {
        order.push_back(i);
        tt.compute_ns(500);
      });
    });
  });
  ASSERT_EQ(order.size(), 32u);
  for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Sync, ReduceSumAndMax) {
  Fixture f(16);
  double sum = -1, mx = -1;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      const double s = tt.reduce(static_cast<double>(tt.id() + 1),
                                 ReduceOp::kSum);
      const double m = tt.reduce(static_cast<double>(tt.id()), ReduceOp::kMax);
      if (tt.id() == 5) {
        sum = s;
        mx = m;
      }
    });
  });
  EXPECT_DOUBLE_EQ(sum, 16.0 * 17.0 / 2.0);  // 1+2+...+16
  EXPECT_DOUBLE_EQ(mx, 15.0);
}

TEST(Sync, ReduceMinProd) {
  Fixture f(4);
  double mn = -1, prod = -1;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      mn = tt.reduce(static_cast<double>(10 - tt.id()), ReduceOp::kMin);
      prod = tt.reduce(2.0, ReduceOp::kProd);
    });
  });
  EXPECT_DOUBLE_EQ(mn, 7.0);
  EXPECT_DOUBLE_EQ(prod, 16.0);
}

TEST(Sync, CopyprivateBroadcasts) {
  Fixture f(8);
  int filled = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.copyprivate(1 << 20, [&] { ++filled; });
    });
  });
  EXPECT_EQ(filled, 1);
}

TEST(Tuning, RtkHasHigherPrimitiveCostsThanLinux) {
  const RuntimeTuning linux = linux_libomp_tuning();
  const RuntimeTuning rtk = rtk_libomp_tuning();
  EXPECT_GT(rtk.fork_base_ns, linux.fork_base_ns);
  EXPECT_GT(rtk.dispatch_next_ns, linux.dispatch_next_ns);
  EXPECT_GT(rtk.barrier_step_extra_ns, linux.barrier_step_extra_ns);
  // PIK is the pristine binary.
  const RuntimeTuning pik = pik_libomp_tuning();
  EXPECT_EQ(pik.fork_base_ns, linux.fork_base_ns);
}

}  // namespace
}  // namespace kop::komp

// Appended coverage: schedule(runtime) and the sections construct.
namespace kop::komp {
namespace {

TEST(ForLoop, RuntimeScheduleFollowsIcv) {
  Fixture f(4);
  f.nk->set_env("OMP_SCHEDULE", "dynamic,3");
  std::vector<std::int64_t> chunk_sizes;
  f.run([&](Runtime& rt) {
    EXPECT_EQ(rt.icv().run_sched_var, Schedule::kDynamic);
    rt.parallel([&](TeamThread& tt) {
      tt.for_loop(Schedule::kRuntime, 0, 0, 30,
                  [&](std::int64_t b, std::int64_t e) {
                    chunk_sizes.push_back(e - b);
                  });
    });
  });
  // dynamic,3 over 30 iterations -> ten 3-iteration chunks.
  EXPECT_EQ(chunk_sizes.size(), 10u);
  for (auto c : chunk_sizes) EXPECT_EQ(c, 3);
}

TEST(Sections, EachBodyRunsOnceAcrossTeam) {
  Fixture f(4);
  std::vector<int> runs(6, 0);
  std::set<int> executors;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      std::vector<std::function<void()>> bodies;
      for (int s = 0; s < 6; ++s) {
        bodies.push_back([&, s] {
          ++runs[static_cast<std::size_t>(s)];
          executors.insert(tt.id());
          tt.compute_ns(20'000);
        });
      }
      tt.sections(bodies);
    });
  });
  for (int s = 0; s < 6; ++s) EXPECT_EQ(runs[static_cast<std::size_t>(s)], 1);
  EXPECT_GT(executors.size(), 1u);  // distributed over the team
}

TEST(Sections, MoreThreadsThanSections) {
  Fixture f(8);
  int total = 0;
  f.run([&](Runtime& rt) {
    rt.parallel([&](TeamThread& tt) {
      tt.sections({[&] { ++total; }, [&] { ++total; }});
    });
  });
  EXPECT_EQ(total, 2);
}

}  // namespace
}  // namespace kop::komp

// Appended coverage: OMP_PROC_BIND placement.
namespace kop::komp {
namespace {

std::vector<int> worker_cpus(const char* bind, int threads) {
  sim::Engine engine(5);
  nautilus::NautilusKernel nk(engine, hw::xeon8());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  if (bind != nullptr) nk.set_env("OMP_PROC_BIND", bind);
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());
  std::vector<int> cpus(static_cast<std::size_t>(threads), -1);
  nk.spawn_thread(
      "main",
      [&] {
        Runtime rt(pt);
        rt.parallel([&](TeamThread& tt) {
          cpus[static_cast<std::size_t>(tt.id())] = rt.os().current_cpu();
        });
      },
      0);
  engine.run();
  return cpus;
}

TEST(ProcBind, CloseIsConsecutive) {
  const auto cpus = worker_cpus("close", 8);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(cpus[static_cast<std::size_t>(t)], t);
}

TEST(ProcBind, SpreadStridesAcrossSockets) {
  // 8 threads on 192 CPUs / 8 sockets: one thread per socket.
  const auto cpus = worker_cpus("spread", 8);
  std::set<int> sockets;
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(cpus[static_cast<std::size_t>(t)], t * 24);
    sockets.insert(cpus[static_cast<std::size_t>(t)] / 24);
  }
  EXPECT_EQ(sockets.size(), 8u);
}

TEST(ProcBind, DefaultAndGarbageAreClose) {
  EXPECT_EQ(worker_cpus(nullptr, 4)[3], 3);
  EXPECT_EQ(worker_cpus("bananas", 4)[3], 3);
}

}  // namespace
}  // namespace kop::komp
