// Tests for the Linux substrate: futex table, processes, placement
// policy, syscall charging.
#include <gtest/gtest.h>

#include "linuxmodel/linux_os.hpp"

namespace kop::linuxmodel {
namespace {

struct Fixture {
  sim::Engine engine{11};
  LinuxOs os{engine, hw::phi()};
};

TEST(Futex, WaitWakeRoundTrip) {
  Fixture f;
  int woken = 0;
  f.os.spawn_thread(
      "waiter",
      [&] {
        f.os.futex().wait(0x1000);
        ++woken;
      },
      0);
  f.os.spawn_thread(
      "waker",
      [&] {
        f.engine.sleep_for(1000);
        EXPECT_EQ(f.os.futex().wake(0x1000, 1), 1);
        EXPECT_EQ(f.os.futex().wake(0x1000, 1), 0);  // nobody left
      },
      1);
  f.engine.run();
  EXPECT_EQ(woken, 1);
}

TEST(Futex, WakeCountLimitsWaiters) {
  Fixture f;
  int woken = 0;
  for (int i = 0; i < 4; ++i) {
    f.os.spawn_thread(
        "w" + std::to_string(i),
        [&] {
          f.os.futex().wait(0x2000);
          ++woken;
        },
        i);
  }
  f.os.spawn_thread(
      "waker",
      [&] {
        f.engine.sleep_for(1000);
        EXPECT_EQ(f.os.futex().wake(0x2000, 2), 2);
        f.engine.sleep_for(1000);
        EXPECT_EQ(f.os.futex().wake(0x2000, 10), 2);
      },
      5);
  f.engine.run();
  EXPECT_EQ(woken, 4);
}

TEST(Futex, DistinctAddressesAreIndependent) {
  Fixture f;
  bool woken_a = false;
  f.os.spawn_thread(
      "a",
      [&] {
        f.os.futex().wait(0xA);
        woken_a = true;
      },
      0);
  f.os.spawn_thread(
      "b",
      [&] {
        f.engine.sleep_for(500);
        EXPECT_EQ(f.os.futex().wake(0xB, 1), 0);  // wrong address
        EXPECT_EQ(f.os.futex().wake(0xA, 1), 1);
      },
      1);
  f.engine.run();
  EXPECT_TRUE(woken_a);
}

TEST(Futex, TimedWait) {
  Fixture f;
  bool notified = true;
  f.os.spawn_thread(
      "t",
      [&] {
        notified = f.os.futex().wait_until(0xC, f.engine.now() + 5000);
      },
      0);
  f.engine.run();
  EXPECT_FALSE(notified);
}

TEST(Process, TracksThreadsAndRegions) {
  Fixture f;
  Process* p = f.os.create_process("nas-bt");
  EXPECT_EQ(p->pid(), 1000);
  auto* r = f.os.alloc_region("heap", 1ULL << 20, osal::AllocPolicy::local());
  p->add_region(r);
  EXPECT_EQ(p->mapped_bytes(), 1ULL << 20);
  EXPECT_EQ(f.os.create_process("second")->pid(), 1001);
}

TEST(Placement, DefaultIsDemandPagedFirstTouchThp) {
  Fixture f;
  auto* r = f.os.alloc_region("arr", 1ULL << 30, osal::AllocPolicy::local());
  EXPECT_TRUE(r->demand_paged());
  EXPECT_TRUE(r->is_sliced());  // first touch deferred
  EXPECT_EQ(r->page_size(), hw::PageSize::k2M);
  EXPECT_NEAR(r->small_page_fraction(), 0.2, 1e-9);
}

TEST(Placement, ExplicitZoneBind) {
  sim::Engine eng(3);
  LinuxOs os(eng, hw::xeon8());
  auto* r = os.alloc_region("arr", 1ULL << 20, osal::AllocPolicy::in_zone(5));
  EXPECT_FALSE(r->is_sliced());
  EXPECT_EQ(r->home_zone(), 5);
}

TEST(Syscall, ChargesTime) {
  Fixture f;
  sim::Time elapsed = 0;
  f.os.spawn_thread(
      "t",
      [&] {
        const sim::Time t0 = f.engine.now();
        f.os.charge_syscall();
        elapsed = f.engine.now() - t0;
      },
      0);
  f.engine.run();
  EXPECT_EQ(elapsed, f.os.costs().syscall_ns);
}

TEST(Costs, LinuxPersonalityHasNoiseAndPaging) {
  const auto m = hw::phi();
  const auto c = hw::linux_costs(m);
  EXPECT_TRUE(c.demand_paging);
  EXPECT_GT(c.noise_rate_hz, 0.0);
  EXPECT_GT(c.syscall_ns, 0);
  const auto nk = hw::nautilus_costs(m);
  EXPECT_FALSE(nk.demand_paging);
  EXPECT_EQ(nk.noise_rate_hz, 0.0);
  EXPECT_EQ(nk.syscall_ns, 0);
  EXPECT_LT(nk.wake_latency_ns, c.wake_latency_ns);
}

}  // namespace
}  // namespace kop::linuxmodel
