// Tests for the NAS suite: spec sanity, functional kernels through
// the runtime, and both executors.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "nas/exec.hpp"
#include "nas/functional.hpp"
#include "nas/specs.hpp"

namespace kop::nas {
namespace {

TEST(Specs, SuiteShapes) {
  const auto all = paper_suite();
  ASSERT_EQ(all.size(), 8u);
  const auto cck = cck_suite();
  ASSERT_EQ(cck.size(), 7u);
  for (const auto& b : cck) EXPECT_NE(b.name, "IS");  // elided (§6.2)
  EXPECT_EQ(by_name("BT").clazz, 'B');
  EXPECT_EQ(by_name("FT").clazz, 'B');
  EXPECT_EQ(by_name("LU").clazz, 'C');
  EXPECT_THROW(by_name("ZZ"), std::invalid_argument);
}

TEST(Specs, WorkAndRegionsArePositive) {
  for (const auto& b : paper_suite()) {
    EXPECT_GT(b.base_work_ns(), 0.0) << b.name;
    EXPECT_GT(b.total_region_bytes(), 0u) << b.name;
    EXPECT_FALSE(b.loops.empty()) << b.name;
    for (const auto& l : b.loops) {
      EXPECT_GT(l.trip, 0) << b.name << "/" << l.name;
      EXPECT_GT(l.per_iter_ns, 0.0) << b.name << "/" << l.name;
    }
  }
}

TEST(Specs, PrivatizationFlagsMatchThePaper) {
  // §6.2: LU, BT, SP and IS lose parallelism to the privatization
  // limitation; FT, EP, MG, CG do not.
  auto has_priv = [](const BenchmarkSpec& b) {
    for (const auto& l : b.loops)
      if (l.needs_object_privatization) return true;
    return false;
  };
  EXPECT_TRUE(has_priv(bt()));
  EXPECT_TRUE(has_priv(sp()));
  EXPECT_TRUE(has_priv(lu()));
  EXPECT_TRUE(has_priv(is()));
  EXPECT_FALSE(has_priv(ft()));
  EXPECT_FALSE(has_priv(ep()));
  EXPECT_FALSE(has_priv(mg()));
  EXPECT_FALSE(has_priv(cg()));
}

// ------------------------------------------------- functional kernels

struct OmpFixture {
  explicit OmpFixture(int threads) {
    core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = core::PathKind::kRtk;
    cfg.num_threads = threads;
    stack = core::Stack::create(cfg);
  }
  std::unique_ptr<core::Stack> stack;
};

TEST(Functional, CgResidualDrops) {
  OmpFixture f(8);
  functional::CgResult result;
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    result = functional::cg_kernel(rt, /*n=*/24, /*iterations=*/40);
    return 0;
  });
  EXPECT_GT(result.initial_residual, 0.0);
  EXPECT_LT(result.final_residual, result.initial_residual * 1e-3);
}

TEST(Functional, CgMatchesSingleThread) {
  auto run = [](int threads) {
    OmpFixture f(threads);
    functional::CgResult r;
    f.stack->run_omp_app([&](komp::Runtime& rt) {
      r = functional::cg_kernel(rt, 16, 10);
      return 0;
    });
    return r.final_residual;
  };
  EXPECT_NEAR(run(1), run(8), 1e-9);
}

TEST(Functional, EpMatchesSerialReference) {
  OmpFixture f(8);
  functional::EpResult par;
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    par = functional::ep_kernel(rt, 20'000);
    return 0;
  });
  const functional::EpResult ser = functional::ep_reference(20'000);
  EXPECT_EQ(par.inside, ser.inside);
  // Sanity: acceptance ratio near pi/4.
  EXPECT_NEAR(static_cast<double>(par.inside) / 20'000.0, 0.785, 0.02);
}

TEST(Functional, IsSortsCorrectly) {
  OmpFixture f(8);
  std::vector<std::uint32_t> keys;
  std::uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    keys.push_back(static_cast<std::uint32_t>(state >> 40));
  }
  std::vector<std::uint32_t> sorted;
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    sorted = functional::is_kernel(rt, keys, 64);
    return 0;
  });
  ASSERT_EQ(sorted.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(sorted, ref);
}

TEST(Functional, MgResidualDecreasesWithSweeps) {
  OmpFixture f(4);
  double r5 = 0, r20 = 0;
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    r5 = functional::mg_kernel(rt, 32, 5);
    r20 = functional::mg_kernel(rt, 32, 20);
    return 0;
  });
  EXPECT_GT(r5, 0.0);
  EXPECT_LT(r20, r5);
}

// -------------------------------------------------------- executors

BenchmarkSpec tiny_spec() {
  BenchmarkSpec b = ep();
  b.timesteps = 2;
  for (auto& l : b.loops) {
    l.trip = 256;
    l.per_iter_ns = 20'000;
  }
  return b;
}

TEST(Executors, OpenmpPathRunsAndTimes) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kLinuxOmp;
  cfg.num_threads = 8;
  auto stack = core::Stack::create(cfg);
  RunResult result;
  stack->run_omp_app([&](komp::Runtime& rt) {
    result = run_openmp(rt, tiny_spec());
    return 0;
  });
  EXPECT_GT(result.timed_seconds, 0.0);
  EXPECT_GT(result.init_seconds, 0.0);
}

TEST(Executors, AutompPathRunsAndReports) {
  core::StackConfig cfg;
  cfg.path = core::PathKind::kAutoMpNautilus;
  cfg.num_threads = 8;
  cfg.app_static_bytes = 0;
  auto stack = core::Stack::create(cfg);
  RunResult result;
  stack->run_cck_app([&](osal::Os& os, virgil::Virgil& vg) {
    result = run_automp(os, vg, tiny_spec());
    return 0;
  });
  EXPECT_GT(result.timed_seconds, 0.0);
  EXPECT_EQ(result.compile_report.sequential_loops, 0);
  EXPECT_EQ(result.compile_report.doall_loops, 1);
}

TEST(Executors, AutompSequentializesPrivatizationLoops) {
  BenchmarkSpec b = tiny_spec();
  b.loops[0].needs_object_privatization = true;
  core::StackConfig cfg;
  cfg.path = core::PathKind::kAutoMpLinux;
  cfg.num_threads = 8;
  auto stack = core::Stack::create(cfg);
  RunResult result;
  stack->run_cck_app([&](osal::Os& os, virgil::Virgil& vg) {
    result = run_automp(os, vg, b);
    return 0;
  });
  EXPECT_EQ(result.compile_report.doall_loops, 0);
  EXPECT_EQ(result.compile_report.sequential_loops, 1);
}

TEST(Executors, IsExtractsNoParallelismUnderAutomp) {
  BenchmarkSpec b = is();
  b.timesteps = 1;
  for (auto& l : b.loops) {
    l.trip = 64;
    l.per_iter_ns = 10'000;
  }
  core::StackConfig cfg;
  cfg.path = core::PathKind::kAutoMpNautilus;
  cfg.num_threads = 8;
  cfg.app_static_bytes = 0;
  auto stack = core::Stack::create(cfg);
  RunResult result;
  stack->run_cck_app([&](osal::Os& os, virgil::Virgil& vg) {
    result = run_automp(os, vg, b);
    return 0;
  });
  EXPECT_EQ(result.compile_report.doall_loops, 0);
  EXPECT_EQ(result.compile_report.parallel_work_fraction, 0.0);
}

}  // namespace
}  // namespace kop::nas

// Appended coverage: FT functional kernel.
namespace kop::nas {
namespace {

TEST(Functional, FftRoundTripIsExact) {
  OmpFixture f(8);
  double err = 1.0;
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    err = functional::ft_kernel(rt, 1024, 7);
    return 0;
  });
  EXPECT_LT(err, 1e-10);
}

TEST(Functional, FftIndependentOfThreadCount) {
  auto run = [](int threads) {
    OmpFixture f(threads);
    double err = 1.0;
    f.stack->run_omp_app([&](komp::Runtime& rt) {
      err = functional::ft_kernel(rt, 256, 3);
      return 0;
    });
    return err;
  };
  EXPECT_DOUBLE_EQ(run(1), run(16));
}

}  // namespace
}  // namespace kop::nas

// Appended coverage: the unified verification dispatcher.
namespace kop::nas {
namespace {

TEST(Functional, VerifyDispatcherCoversSuiteAndRejectsUnknown) {
  OmpFixture f(8);
  f.stack->run_omp_app([&](komp::Runtime& rt) {
    for (const auto& spec : paper_suite()) {
      const auto r = functional::verify(rt, spec.name);
      EXPECT_TRUE(r.passed) << spec.name << ": " << r.detail;
      EXPECT_FALSE(r.detail.empty());
    }
    EXPECT_THROW(functional::verify(rt, "HPL"), std::invalid_argument);
    return 0;
  });
}

}  // namespace
}  // namespace kop::nas
