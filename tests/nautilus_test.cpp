// Tests for the Nautilus kernel substrate: buddy allocator, task
// system, loader + boot layout, IRQ/FPU models, TLS, shell, placement.
#include <gtest/gtest.h>

#include "nautilus/kernel.hpp"

namespace kop::nautilus {
namespace {

// ------------------------------------------------------------- buddy

TEST(Buddy, AllocFreeRoundTrip) {
  BuddyAllocator b(0, 1ULL << 20, 4096);
  const auto a1 = b.alloc(5000);  // rounds to 8K
  const auto a2 = b.alloc(4096);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(b.allocated_bytes(), 8192u + 4096u);
  b.free(a1);
  b.free(a2);
  EXPECT_EQ(b.allocated_bytes(), 0u);
  EXPECT_EQ(b.largest_free_block(), 1ULL << 20);  // fully coalesced
}

TEST(Buddy, SplitsAndCoalesces) {
  BuddyAllocator b(1 << 20, 1ULL << 20, 4096);
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 256; ++i) blocks.push_back(b.alloc(4096));
  EXPECT_EQ(b.free_bytes(), 0u);
  EXPECT_THROW(b.alloc(4096), BuddyError);
  for (auto a : blocks) b.free(a);
  EXPECT_EQ(b.largest_free_block(), 1ULL << 20);
}

TEST(Buddy, ErrorsOnBadFree) {
  BuddyAllocator b(0, 1ULL << 20);
  EXPECT_THROW(b.free(12345), BuddyError);
  const auto a = b.alloc(4096);
  b.free(a);
  EXPECT_THROW(b.free(a), BuddyError);  // double free
}

TEST(Buddy, OversizeAllocationFails) {
  BuddyAllocator b(0, 1ULL << 20);
  EXPECT_THROW(b.alloc(2ULL << 20), BuddyError);
}

TEST(Buddy, AddressesStayInRange) {
  BuddyAllocator b(4ULL << 30, 64ULL << 20, 4096);
  for (int i = 0; i < 100; ++i) {
    const auto a = b.alloc(64 * 1024);
    EXPECT_GE(a, 4ULL << 30);
    EXPECT_LT(a, (4ULL << 30) + (64ULL << 20));
  }
}

// ------------------------------------------------------- task system

TEST(TaskSystem, ExecutesEnqueuedTasks) {
  sim::Engine eng(1);
  NautilusKernel nk(eng, hw::phi());
  int executed = 0;
  nk.spawn_thread(
      "main",
      [&] {
        nk.task_system().start();
        for (int i = 0; i < 100; ++i)
          nk.task_system().enqueue([&] { ++executed; }, i % 64);
        while (nk.task_system().pending() > 0) eng.sleep_for(10'000);
        nk.task_system().stop();
      },
      0);
  eng.run();
  EXPECT_EQ(executed, 100);
  EXPECT_EQ(nk.task_system().executed(), 100u);
}

TEST(TaskSystem, StealsFromLoadedQueues) {
  sim::Engine eng(2);
  NautilusKernel nk(eng, hw::phi());
  int executed = 0;
  nk.spawn_thread(
      "main",
      [&] {
        nk.task_system().start(8);
        // Everything lands on CPU 0's queue; idle workers must steal.
        for (int i = 0; i < 64; ++i)
          nk.task_system().enqueue(
              [&] {
                nk.compute_ns(50'000);
                ++executed;
              },
              0);
        while (nk.task_system().pending() > 0 || executed < 64)
          eng.sleep_for(50'000);
        nk.task_system().stop();
      },
      0);
  eng.run();
  EXPECT_EQ(executed, 64);
  EXPECT_GT(nk.task_system().steals(), 0u);
}

// ------------------------------------------------------------ loader

ExecutableImage small_image() {
  ExecutableImage img;
  img.name = "toy";
  img.position_independent = true;
  img.statically_linked = true;
  img.text_bytes = 1 << 20;
  img.rodata_bytes = 1 << 20;
  img.data_bytes = 1 << 20;
  img.bss_bytes = 4 << 20;
  img.tls.tdata_bytes = 4096;
  img.tls.tbss_bytes = 8192;
  img.header.magic = kMultiboot2Magic64;
  img.header.image_bytes = img.loadable_bytes();
  img.header.entry_offset = 0x100;
  return img;
}

TEST(Loader, LoadsValidImage) {
  BuddyAllocator phys(4ULL << 30, 1ULL << 30);
  Loader loader(phys);
  const auto img = small_image();
  const LoadedProgram p = loader.load(img);
  EXPECT_EQ(p.entry, p.base + 0x100);
  EXPECT_EQ(p.tls.tdata_bytes, 4096u);
  EXPECT_GT(phys.allocated_bytes(), 0u);
  loader.unload(p);
  EXPECT_EQ(phys.allocated_bytes(), 0u);
}

TEST(Loader, RejectsBadImages) {
  BuddyAllocator phys(4ULL << 30, 1ULL << 30);
  Loader loader(phys);

  auto bad_magic = small_image();
  bad_magic.header.magic = 0xdeadbeef;
  EXPECT_THROW(loader.load(bad_magic), LoaderError);

  auto not_pie = small_image();
  not_pie.position_independent = false;
  EXPECT_THROW(loader.load(not_pie), LoaderError);

  auto dynamic = small_image();
  dynamic.statically_linked = false;
  EXPECT_THROW(loader.load(dynamic), LoaderError);

  auto bad_entry = small_image();
  bad_entry.header.entry_offset = bad_entry.text_bytes + 1;
  EXPECT_THROW(loader.load(bad_entry), LoaderError);
}

TEST(BootLayout, GigabyteStaticsOverlapMmio) {
  const auto m = hw::phi();
  BootImage ok;
  ok.kernel_bytes = 48ULL << 20;
  ok.app_static_bytes = 420ULL << 20;  // class B statics
  EXPECT_TRUE(BootLayout::fits(m, ok));
  EXPECT_NO_THROW(BootLayout::check(m, ok));

  BootImage class_c = ok;
  class_c.app_static_bytes = 3400ULL << 20;  // class-C gigabyte globals
  EXPECT_FALSE(BootLayout::fits(m, class_c));
  EXPECT_THROW(BootLayout::check(m, class_c), BootOverlapError);
}

// ----------------------------------------------------------- irq/fpu

TEST(Fpu, LazySaveIdentifiesOffendersAndNoSseFixesThem) {
  FpuManager fpu(1800);
  EXPECT_EQ(fpu.interrupt_entry("nic_irq", /*uses_sse=*/true), 1800);
  EXPECT_EQ(fpu.interrupt_entry("timer", /*uses_sse=*/false), 0);
  EXPECT_EQ(fpu.offenders().count("nic_irq"), 1u);
  EXPECT_EQ(fpu.offenders().count("timer"), 0u);
  // Apply the no-SSE attribute to the identified handler.
  fpu.mark_no_sse("nic_irq");
  EXPECT_EQ(fpu.interrupt_entry("nic_irq", true), 0);
  EXPECT_EQ(fpu.offenders().at("nic_irq"), 1u);
}

TEST(Irq, SteeringSendsInterruptsToOneCpu) {
  sim::Engine eng(3);
  NautilusKernel nk(eng, hw::phi());  // steers to CPU 0 by default
  nk.irq().add_source("nic", sim::kMillisecond, 2000);
  eng.post_at(10 * sim::kMillisecond, [&] { nk.irq().stop(); });
  eng.run();
  EXPECT_GE(nk.irq().delivered(0), 9u);
  for (int c = 1; c < 64; ++c) EXPECT_EQ(nk.irq().delivered(c), 0u);
}

TEST(Irq, UnsteeredSpraysAllCpus) {
  sim::Engine eng(3);
  NautilusConfig cfg;
  cfg.steer_interrupts = false;
  NautilusKernel nk(eng, hw::phi(), cfg);
  nk.irq().add_source("nic", sim::kMillisecond / 10, 2000);
  eng.post_at(64 * sim::kMillisecond, [&] { nk.irq().stop(); });
  eng.run();
  int cpus_hit = 0;
  for (int c = 0; c < 64; ++c)
    if (nk.irq().delivered(c) > 0) ++cpus_hit;
  EXPECT_GT(cpus_hit, 32);
}

// --------------------------------------------------------------- tls

TEST(Tls, BlocksAndFsbaseSwitches) {
  BuddyAllocator phys(1ULL << 30, 1ULL << 30);
  TlsSupport tls(phys);
  TlsTemplate tmpl{4096, 8192};
  const auto b1 = tls.create_block(tmpl);
  const auto b2 = tls.create_block(tmpl);
  EXPECT_NE(b1, 0u);
  EXPECT_NE(b1, b2);
  tls.set_fsbase(1, b1);
  tls.set_fsbase(2, b2);
  EXPECT_EQ(tls.fsbase(1), b1);
  tls.on_context_switch(1, 2);
  tls.on_context_switch(2, 2);  // same fsbase: no switch
  EXPECT_EQ(tls.fsbase_switches(), 1u);
  tls.destroy_block(b1);
  tls.destroy_block(b2);
  EXPECT_EQ(phys.allocated_bytes(), 0u);
}

TEST(Tls, EmptyTemplateNeedsNoBlock) {
  BuddyAllocator phys(1ULL << 30, 1ULL << 30);
  TlsSupport tls(phys);
  EXPECT_EQ(tls.create_block(TlsTemplate{}), 0u);
}

// ------------------------------------------------------------- shell

TEST(Shell, RegisterAndRunCommand) {
  sim::Engine eng(4);
  NautilusKernel nk(eng, hw::phi());
  std::vector<std::string> seen_args;
  nk.register_shell_command("nas-bt", [&](const std::vector<std::string>& a) {
    seen_args = a;
    return 7;
  });
  EXPECT_TRUE(nk.has_shell_command("nas-bt"));
  EXPECT_FALSE(nk.has_shell_command("nope"));
  EXPECT_EQ(nk.run_shell_command("nas-bt", {"B", "64"}), 7);
  EXPECT_EQ(seen_args, (std::vector<std::string>{"B", "64"}));
  EXPECT_THROW(nk.run_shell_command("nope"), std::invalid_argument);
}

// --------------------------------------------------------- placement

TEST(Placement, ImmediateAllocationLandsInOneZone) {
  sim::Engine eng(5);
  NautilusKernel nk(eng, hw::xeon8());
  hw::MemRegion* r = nullptr;
  nk.spawn_thread(
      "t",
      [&] {
        r = nk.alloc_region("arr", 1ULL << 30, osal::AllocPolicy::local());
      },
      /*cpu=*/30);  // socket 1
  eng.run();
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->is_sliced());
  EXPECT_EQ(r->home_zone(), 1);
  EXPECT_EQ(r->page_size(), hw::PageSize::k1G);
  EXPECT_FALSE(r->demand_paged());
}

TEST(Placement, FirstTouchExtensionDefersAt2M) {
  sim::Engine eng(6);
  NautilusConfig cfg;
  cfg.first_touch_at_2mb = true;
  NautilusKernel nk(eng, hw::xeon8(), cfg);
  hw::MemRegion* r = nullptr;
  nk.spawn_thread(
      "t",
      [&] {
        r = nk.alloc_region("arr", 1ULL << 30, osal::AllocPolicy::local());
      },
      0);
  eng.run();
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->is_sliced());
  EXPECT_EQ(r->page_size(), hw::PageSize::k2M);
}

}  // namespace
}  // namespace kop::nautilus

// Appended coverage: Nautilus fibers (cooperative contexts, §3.3).
#include "nautilus/fibers.hpp"

namespace kop::nautilus {
namespace {

TEST(Fibers, RoundRobinInterleavesAtYields) {
  sim::Engine eng(31);
  NautilusKernel nk(eng, hw::phi());
  std::vector<int> trace;
  nk.spawn_thread(
      "host",
      [&] {
        FiberPool pool(nk, /*cpu=*/0);
        for (int f = 0; f < 3; ++f) {
          pool.spawn("f" + std::to_string(f), [&, f](FiberPool::Yield& yield) {
            for (int step = 0; step < 2; ++step) {
              trace.push_back(f * 10 + step);
              yield();
            }
          });
        }
        pool.run();
        EXPECT_EQ(pool.completed(), 3);
      },
      0);
  eng.run();
  // Cooperative round-robin: first steps of all fibers precede any
  // second step.
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], 0);
  EXPECT_EQ(trace[1], 10);
  EXPECT_EQ(trace[2], 20);
  EXPECT_EQ(trace[3], 1);
}

TEST(Fibers, CreationIsOrdersOfMagnitudeCheaperThanThreads) {
  sim::Engine eng(32);
  NautilusKernel nk(eng, hw::phi());
  sim::Time fiber_cost = 0, thread_cost = 0;
  nk.spawn_thread(
      "host",
      [&] {
        FiberPool pool(nk, 0);
        sim::Time t0 = eng.now();
        for (int i = 0; i < 100; ++i)
          pool.spawn("f", [](FiberPool::Yield&) {});
        fiber_cost = eng.now() - t0;
        pool.run();

        t0 = eng.now();
        std::vector<osal::Thread*> threads;
        for (int i = 0; i < 100; ++i)
          threads.push_back(nk.spawn_thread("t", [] {}, 0));
        thread_cost = eng.now() - t0;
        for (auto* t : threads) nk.join_thread(t);
      },
      0);
  eng.run();
  EXPECT_GT(thread_cost, fiber_cost * 10);
}

TEST(Fibers, FibersCanComputeAndSpawnFibers) {
  sim::Engine eng(33);
  NautilusKernel nk(eng, hw::phi());
  int done = 0;
  nk.spawn_thread(
      "host",
      [&] {
        FiberPool pool(nk, 2);
        pool.spawn("parent", [&](FiberPool::Yield& yield) {
          nk.compute_ns(10'000);
          pool.spawn("child", [&](FiberPool::Yield&) {
            nk.compute_ns(5'000);
            ++done;
          });
          yield();
          ++done;
        });
        pool.run();
      },
      0);
  eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_GE(nk.cpu(2).busy_time(), 15'000);
}

TEST(Fibers, EmptyPoolRunsImmediately) {
  sim::Engine eng(34);
  NautilusKernel nk(eng, hw::phi());
  bool ok = false;
  nk.spawn_thread(
      "host",
      [&] {
        FiberPool pool(nk, 0);
        pool.run();
        ok = true;
      },
      0);
  eng.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace kop::nautilus
