// OMPT-style tool interface tests: registry semantics, callback counts
// against a parallel region of known structure, the ConstructProfiler
// aggregates, and the VIRGIL runtime-task events on both the user- and
// kernel-level task runtimes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "core/stack.hpp"
#include "komp/team.hpp"
#include "ompt/ompt.hpp"
#include "ompt/profiler.hpp"
#include "osal/sync.hpp"
#include "virgil/virgil.hpp"

namespace {

using kop::ompt::Endpoint;
using kop::ompt::MutexEvent;
using kop::ompt::MutexKind;
using kop::ompt::Registry;
using kop::ompt::SyncRegion;
using kop::ompt::TaskRuntimeKind;
using kop::ompt::Tool;
using kop::ompt::WorkKind;

/// Counts every callback; intervals counted at begin.
struct CountingTool : Tool {
  std::map<std::string, int> n;

  void on_parallel(Endpoint e, kop::sim::Time, int team_size) override {
    if (e == Endpoint::kBegin) {
      ++n["parallel"];
      last_team_size = team_size;
    }
  }
  void on_implicit_task(Endpoint e, kop::sim::Time, int, int) override {
    if (e == Endpoint::kBegin) ++n["implicit-task"];
  }
  void on_work(WorkKind w, Endpoint e, kop::sim::Time, int,
               std::int64_t iterations) override {
    if (e == Endpoint::kBegin) {
      ++n[std::string("work.") + kop::ompt::work_kind_name(w)];
      last_iterations = iterations;
    }
  }
  void on_dispatch(kop::sim::Time, int, std::int64_t, std::int64_t) override {
    ++n["dispatch"];
  }
  void on_sync_region(SyncRegion s, Endpoint e, kop::sim::Time,
                      int) override {
    if (e == Endpoint::kBegin)
      ++n[std::string("sync.") + kop::ompt::sync_region_name(s)];
  }
  void on_sync_wait(Endpoint e, kop::sim::Time, int) override {
    if (e == Endpoint::kBegin) ++n["sync-wait"];
  }
  void on_mutex(MutexKind m, MutexEvent ev, kop::sim::Time,
                const void*) override {
    if (ev == MutexEvent::kAcquired)
      ++n[std::string("mutex.") + kop::ompt::mutex_kind_name(m)];
  }
  void on_task_create(kop::sim::Time, int) override { ++n["task-create"]; }
  void on_task_schedule(Endpoint e, kop::sim::Time, int, bool stolen) override {
    if (e == Endpoint::kBegin) {
      ++n["task-exec"];
      if (stolen) ++n["task-exec-stolen"];
    }
  }
  void on_rt_task_submit(TaskRuntimeKind k, kop::sim::Time, int) override {
    ++n[k == TaskRuntimeKind::kUser ? "rt-submit-user" : "rt-submit-kernel"];
  }
  void on_rt_task_execute(TaskRuntimeKind k, Endpoint e, kop::sim::Time, int,
                          bool) override {
    if (e == Endpoint::kBegin)
      ++n[k == TaskRuntimeKind::kUser ? "rt-exec-user" : "rt-exec-kernel"];
  }

  int last_team_size = 0;
  std::int64_t last_iterations = -1;
};

TEST(Registry, AttachDetachDedup) {
  Registry reg;
  CountingTool a, b;
  EXPECT_TRUE(reg.empty());
  reg.attach(&a);
  reg.attach(&a);  // duplicate attach is a no-op
  reg.attach(&b);
  EXPECT_EQ(reg.size(), 2u);
  int fired = 0;
  reg.emit([&](Tool&) { ++fired; });
  EXPECT_EQ(fired, 2);
  reg.detach(&a);
  EXPECT_EQ(reg.size(), 1u);
  reg.detach(&a);  // double detach is a no-op
  reg.detach(&b);
  EXPECT_TRUE(reg.empty());
}

class OmptCallbacks : public ::testing::Test {
 protected:
  void SetUp() override {
    kop::core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = kop::core::PathKind::kLinuxOmp;
    cfg.num_threads = 4;
    stack_ = kop::core::Stack::create(cfg);
    stack_->os().tools().attach(&tool_);
  }

  std::unique_ptr<kop::core::Stack> stack_;
  CountingTool tool_;
};

TEST_F(OmptCallbacks, ParallelRegionOfKnownStructure) {
  constexpr std::int64_t kIters = 64;
  stack_->run_omp_app([&](kop::komp::Runtime& rt) {
    rt.parallel(4, [&](kop::komp::TeamThread& tt) {
      tt.for_loop(kop::komp::Schedule::kStatic, 0, 0, kIters,
                  [&](std::int64_t, std::int64_t) { tt.compute_ns(50); });
      tt.barrier();
      tt.critical("c", [&]() { tt.compute_ns(10); });
    });
    return 0;
  });

  // One parallel region, one implicit task per team member.
  EXPECT_EQ(tool_.n["parallel"], 1);
  EXPECT_EQ(tool_.last_team_size, 4);
  EXPECT_EQ(tool_.n["implicit-task"], 4);
  // One static loop per member, reporting the full iteration space.
  EXPECT_EQ(tool_.n["work.for-static"], 4);
  EXPECT_EQ(tool_.last_iterations, kIters);
  // Barriers: the loop's implicit closing barrier + the region-end
  // barrier (4 each), and the explicit tt.barrier() (4).
  EXPECT_EQ(tool_.n["sync.barrier-implicit"], 8);
  EXPECT_EQ(tool_.n["sync.barrier-explicit"], 4);
  // critical acquired once per member.
  EXPECT_EQ(tool_.n["mutex.critical"], 4);
}

TEST_F(OmptCallbacks, ExplicitTasksReportCreateAndSchedule) {
  constexpr int kTasks = 12;
  stack_->run_omp_app([&](kop::komp::Runtime& rt) {
    rt.parallel(4, [&](kop::komp::TeamThread& tt) {
      tt.single([&]() {
        for (int i = 0; i < kTasks; ++i)
          tt.task([](kop::komp::TeamThread& ex) { ex.compute_ns(40); });
      });
      tt.taskwait();
    });
    return 0;
  });
  EXPECT_EQ(tool_.n["task-create"], kTasks);
  EXPECT_EQ(tool_.n["task-exec"], kTasks);
  EXPECT_EQ(tool_.n["work.single"], 4);
  EXPECT_GE(tool_.n["sync.taskwait"], 4);
}

TEST_F(OmptCallbacks, DynamicLoopEmitsDispatches) {
  stack_->run_omp_app([&](kop::komp::Runtime& rt) {
    rt.parallel(4, [&](kop::komp::TeamThread& tt) {
      tt.for_loop(kop::komp::Schedule::kDynamic, 4, 0, 64,
                  [&](std::int64_t, std::int64_t) { tt.compute_ns(30); });
    });
    return 0;
  });
  EXPECT_EQ(tool_.n["work.for-dynamic"], 4);
  // 64 iterations in chunks of 4: exactly 16 dispatched chunks.
  EXPECT_EQ(tool_.n["dispatch"], 16);
}

TEST_F(OmptCallbacks, DetachedToolSeesNothing) {
  stack_->os().tools().detach(&tool_);
  stack_->run_omp_app([&](kop::komp::Runtime& rt) {
    rt.parallel(4, [&](kop::komp::TeamThread& tt) { tt.barrier(); });
    return 0;
  });
  EXPECT_TRUE(tool_.n.empty());
}

TEST(OmptProfiler, AggregatesMatchCallbackCounts) {
  kop::core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = kop::core::PathKind::kLinuxOmp;
  cfg.num_threads = 4;
  auto stack = kop::core::Stack::create(cfg);
  kop::ompt::ConstructProfiler prof;
  stack->os().tools().attach(&prof);

  stack->run_omp_app([&](kop::komp::Runtime& rt) {
    rt.parallel(4, [&](kop::komp::TeamThread& tt) {
      tt.for_loop(kop::komp::Schedule::kStatic, 0, 0, 32,
                  [&](std::int64_t, std::int64_t) { tt.compute_ns(100); });
    });
    return 0;
  });

  const auto& aggs = prof.aggregates();
  ASSERT_TRUE(aggs.count("parallel"));
  EXPECT_EQ(aggs.at("parallel").count, 1u);
  EXPECT_GT(aggs.at("parallel").total_ns, 0);
  ASSERT_TRUE(aggs.count("for-static"));
  EXPECT_EQ(aggs.at("for-static").count, 4u);
  ASSERT_TRUE(aggs.count("implicit-task"));
  EXPECT_EQ(aggs.at("implicit-task").count, 4u);

  const std::string table = prof.format_table();
  EXPECT_NE(table.find("parallel"), std::string::npos);
  EXPECT_NE(table.find("for-static"), std::string::npos);

  prof.clear();
  EXPECT_TRUE(prof.aggregates().empty());
}

class VirgilEvents : public ::testing::TestWithParam<kop::core::PathKind> {};

TEST_P(VirgilEvents, RuntimeTaskSubmitAndExecuteBalance) {
  kop::core::StackConfig cfg;
  cfg.machine = "phi";
  cfg.path = GetParam();
  cfg.num_threads = 3;
  auto stack = kop::core::Stack::create(cfg);
  CountingTool tool;
  stack->os().tools().attach(&tool);

  constexpr int kTasks = 10;
  stack->run_cck_app([&](kop::osal::Os& os, kop::virgil::Virgil& vg) {
    kop::virgil::CountdownLatch latch(os, kTasks);
    for (int i = 0; i < kTasks; ++i) {
      vg.submit([&os, &latch]() {
        os.compute_ns(50);
        latch.count_down();
      });
    }
    latch.wait();
    return 0;
  });

  const bool user = GetParam() == kop::core::PathKind::kAutoMpLinux;
  const char* submit = user ? "rt-submit-user" : "rt-submit-kernel";
  const char* exec = user ? "rt-exec-user" : "rt-exec-kernel";
  EXPECT_EQ(tool.n[submit], kTasks);
  EXPECT_EQ(tool.n[exec], kTasks);
  // No events of the other runtime kind.
  EXPECT_EQ(tool.n[user ? "rt-submit-kernel" : "rt-submit-user"], 0);
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, VirgilEvents,
                         ::testing::Values(kop::core::PathKind::kAutoMpLinux,
                                           kop::core::PathKind::kAutoMpNautilus));

}  // namespace
