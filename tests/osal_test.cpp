// Tests for the OS abstraction layer: BaseOs thread plumbing, the
// generic wait queue (spin-vs-sleep wake costs), and the shared
// synchronization primitives.
#include <gtest/gtest.h>

#include "hw/cost_params.hpp"
#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "osal/sync.hpp"

namespace kop::osal {
namespace {

// A NautilusKernel doubles as the concrete Os for most OSAL tests.
struct NkFixture {
  sim::Engine engine{42};
  nautilus::NautilusKernel os{engine, hw::phi()};
};

TEST(BaseOs, SpawnJoinAndCurrent) {
  NkFixture f;
  int observed_cpu = -1;
  Thread* inner = nullptr;
  auto* main = f.os.spawn_thread(
      "main",
      [&] {
        inner = f.os.spawn_thread(
            "worker", [&] { observed_cpu = f.os.current_cpu(); }, 5);
        f.os.join_thread(inner);
      },
      0);
  (void)main;
  f.engine.run();
  EXPECT_EQ(observed_cpu, 5);
  EXPECT_TRUE(inner->done());
}

TEST(BaseOs, ComputeAdvancesTimeAndOccupiesCpu) {
  NkFixture f;
  sim::Time elapsed = 0;
  f.os.spawn_thread(
      "t",
      [&] {
        const sim::Time t0 = f.engine.now();
        f.os.compute_ns(10'000);
        elapsed = f.engine.now() - t0;
      },
      0);
  f.engine.run();
  EXPECT_GE(elapsed, 10'000);
  // Nautilus code generation carries the no-red-zone inflation.
  const auto expected = static_cast<sim::Time>(
      10'000 * f.os.costs().compute_inflation);
  EXPECT_EQ(f.os.cpu(0).busy_time(), expected);
}

TEST(BaseOs, EnvRoundTripAndSysconf) {
  NkFixture f;
  EXPECT_FALSE(f.os.get_env("OMP_NUM_THREADS").has_value());
  f.os.set_env("OMP_NUM_THREADS", "16");
  EXPECT_EQ(f.os.get_env("OMP_NUM_THREADS").value(), "16");
  EXPECT_EQ(f.os.sys_conf(SysConfKey::kNumProcessors), 64);
  EXPECT_EQ(f.os.sys_conf(SysConfKey::kPageSize), 4096);
}

TEST(WaitQueue, SpinningWakeIsFastSleepingWakeIsSlow) {
  // On Linux costs, a waiter woken within its spin window resumes in
  // ~a cacheline transfer; one woken after the window pays the futex
  // wake path (microseconds).
  sim::Engine engine(7);
  linuxmodel::LinuxOs os(engine, hw::xeon8());
  auto q = os.make_wait_queue();

  sim::Time spin_wake_delay = -1, sleep_wake_delay = -1;

  os.spawn_thread(
      "waiter",
      [&] {
        // Case 1: notified at t=+1us, within a 10us spin window.
        sim::Time t0 = engine.now();
        q->wait(/*spin_ns=*/10 * sim::kMicrosecond);
        spin_wake_delay = engine.now() - t0;

        // Case 2: notified at +1ms, long after the window.
        t0 = engine.now();
        q->wait(/*spin_ns=*/10 * sim::kMicrosecond);
        sleep_wake_delay = engine.now() - t0 - sim::kMillisecond;
      },
      0);
  os.spawn_thread(
      "waker",
      [&] {
        engine.sleep_for(sim::kMicrosecond);
        q->notify_one();
        engine.sleep_for(sim::kMillisecond);
        q->notify_one();
      },
      1);
  engine.run();

  EXPECT_GT(spin_wake_delay, 0);
  EXPECT_LT(spin_wake_delay, 2 * sim::kMicrosecond);
  EXPECT_GT(sleep_wake_delay, 2 * sim::kMicrosecond);  // futex path
}

TEST(WaitQueue, TimeoutReturnsFalseAndStaleNotifyIsSafe) {
  NkFixture f;
  auto q = f.os.make_wait_queue();
  bool timed_out = false;
  bool second_ok = false;
  f.os.spawn_thread(
      "t",
      [&] {
        timed_out = !q->wait_until(f.engine.now() + 1000, 0);
        // A subsequent wait must still work (queue not corrupted).
        second_ok = q->wait_until(f.engine.now() + sim::kSecond, 0);
      },
      0);
  f.os.spawn_thread(
      "waker",
      [&] {
        f.engine.sleep_for(5000);
        q->notify_one();
      },
      1);
  f.engine.run();
  EXPECT_TRUE(timed_out);
  EXPECT_TRUE(second_ok);
}

TEST(WaitQueue, NotifyAllWakesEveryWaiter) {
  NkFixture f;
  auto q = f.os.make_wait_queue();
  int woken = 0;
  for (int i = 0; i < 8; ++i) {
    f.os.spawn_thread(
        "w" + std::to_string(i),
        [&] {
          q->wait(0);
          ++woken;
        },
        i);
  }
  f.os.spawn_thread(
      "waker",
      [&] {
        f.engine.sleep_for(1000);
        q->notify_all();
      },
      8);
  f.engine.run();
  EXPECT_EQ(woken, 8);
}

TEST(Sync, MutexProvidesExclusion) {
  NkFixture f;
  Mutex m(f.os);
  int in_critical = 0;
  int max_in_critical = 0;
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    f.os.spawn_thread(
        "t" + std::to_string(i),
        [&] {
          for (int k = 0; k < 5; ++k) {
            m.lock();
            ++in_critical;
            max_in_critical = std::max(max_in_critical, in_critical);
            f.os.compute_ns(500);
            --in_critical;
            m.unlock();
          }
          ++done;
        },
        i);
  }
  f.engine.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(max_in_critical, 1);
}

TEST(Sync, TryLock) {
  NkFixture f;
  Mutex m(f.os);
  bool first = false, second = false;
  f.os.spawn_thread(
      "t",
      [&] {
        first = m.try_lock();
        second = m.try_lock();
        m.unlock();
      },
      0);
  f.engine.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(Sync, CondVarSignalAndBroadcast) {
  NkFixture f;
  Mutex m(f.os);
  CondVar cv(f.os);
  bool ready = false;
  int observed = 0;
  for (int i = 0; i < 4; ++i) {
    f.os.spawn_thread(
        "waiter" + std::to_string(i),
        [&] {
          m.lock();
          while (!ready) cv.wait(m);
          ++observed;
          m.unlock();
        },
        i);
  }
  f.os.spawn_thread(
      "signaler",
      [&] {
        f.engine.sleep_for(10'000);
        m.lock();
        ready = true;
        m.unlock();
        cv.broadcast();
      },
      4);
  f.engine.run();
  EXPECT_EQ(observed, 4);
}

TEST(Sync, CondVarTimedWait) {
  NkFixture f;
  Mutex m(f.os);
  CondVar cv(f.os);
  bool notified = true;
  f.os.spawn_thread(
      "t",
      [&] {
        m.lock();
        notified = cv.wait_until(m, f.engine.now() + 2000);
        m.unlock();
      },
      0);
  f.engine.run();
  EXPECT_FALSE(notified);
}

TEST(Sync, BarrierRendezvous) {
  NkFixture f;
  constexpr int kN = 16;
  Barrier bar(f.os, kN);
  std::vector<sim::Time> release_times(kN);
  for (int i = 0; i < kN; ++i) {
    f.os.spawn_thread(
        "t" + std::to_string(i),
        [&, i] {
          f.os.compute_ns(1000 * (i + 1));  // staggered arrivals
          bar.arrive_and_wait();
          release_times[static_cast<std::size_t>(i)] = f.engine.now();
        },
        i);
  }
  f.engine.run();
  // Nobody is released before the slowest arrival.
  for (const auto t : release_times) EXPECT_GE(t, 1000 * kN);
}

TEST(Sync, SemaphoreBounds) {
  NkFixture f;
  Semaphore sem(f.os, 2);
  int concurrently = 0, peak = 0, done = 0;
  for (int i = 0; i < 6; ++i) {
    f.os.spawn_thread(
        "t" + std::to_string(i),
        [&] {
          sem.wait();
          ++concurrently;
          peak = std::max(peak, concurrently);
          f.os.compute_ns(1000);
          --concurrently;
          sem.post();
          ++done;
        },
        i);
  }
  f.engine.run();
  EXPECT_EQ(done, 6);
  EXPECT_LE(peak, 2);
}

TEST(BaseOs, FirstTouchResolvesToToucherZone) {
  sim::Engine engine(1);
  linuxmodel::LinuxOs os(engine, hw::xeon8());
  hw::MemRegion* r =
      os.alloc_region("arr", 1ULL << 30, AllocPolicy::first_touch());
  int zone_cpu0 = -1, zone_cpu100 = -1, zone_cpu0_again = -1;
  os.spawn_thread(
      "a",
      [&] {
        zone_cpu0 = os.resolve_data_zone(r, 0, 2);  // first half
      },
      0);
  os.spawn_thread(
      "b",
      [&] {
        engine.sleep_for(100);
        zone_cpu100 = os.resolve_data_zone(r, 1, 2);  // second half
        zone_cpu0_again = os.resolve_data_zone(r, 1, 2);
      },
      100);
  engine.run();
  EXPECT_EQ(zone_cpu0, 0);    // cpu 0 -> socket 0
  EXPECT_EQ(zone_cpu100, 4);  // cpu 100 -> socket 4
  EXPECT_EQ(zone_cpu0_again, 4);  // sticky after first touch
}

TEST(BaseOs, NextTouchMigrationRehomesEverySliceToItsToucher) {
  // Migration-on-next-touch (the third placement policy): a
  // Nautilus-style immediately-placed single-zone region re-homes each slice to the
  // toucher's preferred DRAM zone on its first access, so a full touch
  // pass ends with zero misplaced accesses.
  sim::Engine engine(1);
  nautilus::NautilusKernel os(engine, hw::xeon8());
  os.set_next_touch_migration(true);
  hw::MemRegion* r =
      os.alloc_region("arr", 1ULL << 30, AllocPolicy::local());
  int zone_a = -1, zone_b = -1, zone_b_again = -1;
  os.spawn_thread(
      "a", [&] { zone_a = os.resolve_data_zone(r, 0, 2); }, 0);
  os.spawn_thread(
      "b",
      [&] {
        engine.sleep_for(100);
        zone_b = os.resolve_data_zone(r, 1, 2);
        zone_b_again = os.resolve_data_zone(r, 1, 2);
      },
      100);
  engine.run();
  EXPECT_EQ(zone_a, 0);
  EXPECT_EQ(zone_b, 4);        // migrated out of the allocation zone
  EXPECT_EQ(zone_b_again, 4);  // one-shot: later touches keep the home
  EXPECT_GT(r->touches(), 0u);
  EXPECT_DOUBLE_EQ(r->misplaced_fraction(), 0.0);
  const auto snap = os.counters().snapshot();
  EXPECT_GT(snap.totals[static_cast<int>(
                telemetry::Counter::kPageMigrations)], 0u);
}

TEST(BaseOs, ImmediatePlacementWithoutMigrationStaysMisplaced) {
  // Control for the test above: same touch pattern, migration off --
  // the remote half keeps the allocation-time home zone and the
  // misplacement shows up in the region's touch stats.
  sim::Engine engine(1);
  nautilus::NautilusKernel os(engine, hw::xeon8());
  hw::MemRegion* r =
      os.alloc_region("arr", 1ULL << 30, AllocPolicy::local());
  int zone_a = -1, zone_b = -1;
  os.spawn_thread(
      "a", [&] { zone_a = os.resolve_data_zone(r, 0, 2); }, 0);
  os.spawn_thread(
      "b",
      [&] {
        engine.sleep_for(100);
        zone_b = os.resolve_data_zone(r, 1, 2);
      },
      100);
  engine.run();
  EXPECT_EQ(zone_a, zone_b);  // both halves stuck in the home zone
  EXPECT_GT(r->misplaced_fraction(), 0.0);
  const auto snap = os.counters().snapshot();
  EXPECT_EQ(snap.totals[static_cast<int>(
                telemetry::Counter::kPageMigrations)], 0u);
}

}  // namespace
}  // namespace kop::osal

// Appended coverage: the Chrome-trace exporter.
namespace kop::osal {
namespace {

TEST(Tracer, RecordsComputeAndExportsChromeJson) {
  sim::Engine engine(13);
  nautilus::NautilusKernel os(engine, hw::phi());
  os.tracer().enable();
  os.spawn_thread(
      "omp-worker-3",
      [&] {
        os.compute_ns(5000);
        os.compute_ns(2000);
      },
      3);
  engine.run();
  ASSERT_EQ(os.tracer().events().size(), 2u);
  EXPECT_EQ(os.tracer().events()[0].cpu, 3);
  EXPECT_EQ(os.tracer().events()[0].name, "omp-worker-3");
  const std::string json = os.tracer().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("omp-worker-3"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
}

TEST(Tracer, DisabledByDefaultAndClearable) {
  sim::Engine engine(14);
  nautilus::NautilusKernel os(engine, hw::phi());
  os.spawn_thread("t", [&] { os.compute_ns(1000); }, 0);
  engine.run();
  EXPECT_TRUE(os.tracer().events().empty());
  os.tracer().enable();
  os.tracer().record("x\"y", 0, 1, 2);  // quote escaping
  EXPECT_NE(os.tracer().to_chrome_json().find("x\\\"y"), std::string::npos);
  os.tracer().clear();
  EXPECT_TRUE(os.tracer().events().empty());
}

}  // namespace
}  // namespace kop::osal
