// Tests for the PIK path: loader flow, pre-start emulation, syscall
// table semantics (stub-first, /proc/self, futex, mmap), app runs.
#include <gtest/gtest.h>

#include "pik/gang.hpp"
#include "pik/pik.hpp"

namespace kop::pik {
namespace {

PikOptions phi_options() {
  PikOptions o;
  o.machine = hw::phi();
  return o;
}

TEST(Syscalls, UnimplementedReturnsEnosysAndIsRecorded) {
  sim::Engine eng(1);
  PikOs os(eng, hw::phi());
  SyscallTable table(os);
  const auto r = table.invoke(9999);
  EXPECT_EQ(r.rv, kEnosys);
  EXPECT_EQ(table.total_calls(), 1u);
  ASSERT_EQ(table.unimplemented_seen().size(), 1u);
  EXPECT_EQ(table.unimplemented_seen()[0], 9999);
}

TEST(Syscalls, ImplementReplacesStub) {
  sim::Engine eng(2);
  PikOs os(eng, hw::phi());
  SyscallTable table(os);
  EXPECT_FALSE(table.is_implemented(Sys::kGetpid));
  table.implement(Sys::kGetpid,
                  [](const SyscallArgs&) { return SyscallResult{1234, {}}; });
  EXPECT_TRUE(table.is_implemented(Sys::kGetpid));
  EXPECT_EQ(table.invoke(Sys::kGetpid).rv, 1234);
  EXPECT_EQ(table.calls(Sys::kGetpid), 1u);
}

TEST(Pik, RunsAppAndReturnsExitCode) {
  PikStack stack(phi_options());
  int team = 0;
  const int code = stack.run_app("hello", [&](komp::Runtime& rt) {
    rt.parallel(8, [&](komp::TeamThread& tt) {
      if (tt.id() == 0) team = tt.nthreads();
    });
    return 9;
  });
  EXPECT_EQ(code, 9);
  EXPECT_EQ(team, 8);
  EXPECT_TRUE(stack.process()->exited);
}

TEST(Pik, PrestartCompletesLinuxIllusion) {
  PikStack stack(phi_options());
  stack.run_app("app", [](komp::Runtime&) { return 0; });
  const auto& sys = stack.syscalls();
  EXPECT_TRUE(stack.process()->prestart_complete);
  // The C-runtime startup sequence went through the emulated calls.
  EXPECT_GE(sys.calls(Sys::kArchPrctl), 1u);       // FSBASE for TLS
  EXPECT_GE(sys.calls(Sys::kSetTidAddress), 1u);
  EXPECT_GE(sys.calls(Sys::kMmap), 1u);
  EXPECT_GE(sys.calls(Sys::kSchedGetaffinity), 1u);  // libomp topology
  EXPECT_GE(sys.calls(Sys::kOpenat), 1u);            // /proc/self
  EXPECT_GE(sys.calls(Sys::kExitGroup), 1u);
}

TEST(Pik, ProcSelfIsTheOnlyVirtualFs) {
  PikStack stack(phi_options());
  stack.run_app("app", [&](komp::Runtime&) {
    auto& sys = stack.syscalls();
    SyscallArgs a;
    a.path = "/proc/self/status";
    const auto fd = sys.invoke(Sys::kOpenat, a);
    EXPECT_GE(fd.rv, 3);
    SyscallArgs r;
    r.arg[0] = static_cast<std::uint64_t>(fd.rv);
    r.arg[2] = 4096;
    const auto data = sys.invoke(Sys::kRead, r);
    EXPECT_NE(data.data.find("Threads:"), std::string::npos);
    SyscallArgs c;
    c.arg[0] = static_cast<std::uint64_t>(fd.rv);
    EXPECT_EQ(sys.invoke(Sys::kClose, c).rv, 0);

    // /dev, /sys, /proc/cpuinfo: not implemented (§4.3).
    SyscallArgs bad;
    bad.path = "/proc/cpuinfo";
    EXPECT_EQ(sys.invoke(Sys::kOpenat, bad).rv, kEnoent);
    bad.path = "/dev/null";
    EXPECT_EQ(sys.invoke(Sys::kOpenat, bad).rv, kEnoent);
    return 0;
  });
}

TEST(Pik, MmapMunmapRoundTrip) {
  PikStack stack(phi_options());
  stack.run_app("app", [&](komp::Runtime&) {
    auto& sys = stack.syscalls();
    SyscallArgs a;
    a.arg[1] = 16ULL << 20;
    const auto addr = sys.invoke(Sys::kMmap, a);
    EXPECT_GT(addr.rv, 0);
    SyscallArgs u;
    u.arg[0] = static_cast<std::uint64_t>(addr.rv);
    EXPECT_EQ(sys.invoke(Sys::kMunmap, u).rv, 0);
    EXPECT_EQ(sys.invoke(Sys::kMunmap, u).rv, kEinval);  // double unmap
    return 0;
  });
}

TEST(Pik, WriteGoesToConsole) {
  PikStack stack(phi_options());
  stack.run_app("app", [&](komp::Runtime&) {
    SyscallArgs a;
    a.arg[0] = 1;
    a.data = "NAS BT-B: verification ok\n";
    stack.syscalls().invoke(Sys::kWrite, a);
    return 0;
  });
  EXPECT_NE(stack.console().find("verification ok"), std::string::npos);
}

TEST(Pik, CloneTrafficFromThreadCreation) {
  PikStack stack(phi_options());
  stack.os().set_env("OMP_NUM_THREADS", "8");
  stack.run_app("app", [&](komp::Runtime& rt) {
    rt.parallel([&](komp::TeamThread& tt) { tt.compute_ns(100); });
    return 0;
  });
  // 7 workers cloned through the emulated interface.
  EXPECT_GE(stack.syscalls().calls(Sys::kClone), 7u);
}

TEST(Pik, LoaderRejectsNonPieApp) {
  PikStack stack(phi_options());
  auto img = default_app_image("bad", 1 << 20);
  img.position_independent = false;  // forgot -fPIE
  EXPECT_THROW(stack.run_app("bad", img, [](komp::Runtime&) { return 0; }),
               nautilus::LoaderError);
}

TEST(Pik, ImageFoldsInUserLibraries) {
  const auto img = default_app_image("nas-ft", 640ULL << 20);
  EXPECT_TRUE(img.statically_linked);
  EXPECT_TRUE(img.position_independent);
  // "the footprint of a PIK executable is very large compared to a
  // typical kernel module" (§7).
  EXPECT_GT(img.memory_bytes(), 640ULL << 20);
  bool has_libomp = false;
  for (const auto& lib : img.linked_libs) has_libomp |= lib == "libomp.a";
  EXPECT_TRUE(has_libomp);
}

TEST(Pik, GigabyteStaticsAreFine) {
  // PIK has no boot-image problem (§6.2): the loader places the image
  // anywhere in physical memory.
  PikOptions o = phi_options();
  o.app_static_bytes = 3400ULL << 20;
  PikStack stack(o);
  EXPECT_EQ(stack.run_app("big", [](komp::Runtime&) { return 0; }), 0);
}

TEST(PikCosts, SitBetweenLinuxAndRtk) {
  const auto m = hw::phi();
  const auto linux = hw::linux_costs(m);
  const auto nk = hw::nautilus_costs(m);
  const auto pk = pik_costs(m);
  EXPECT_GT(pk.syscall_ns, nk.syscall_ns);
  EXPECT_LT(pk.syscall_ns, linux.syscall_ns);
  EXPECT_LT(pk.wake_latency_ns, linux.wake_latency_ns);
  EXPECT_LT(pk.wake_cv, linux.wake_cv);  // the low-jitter property
  EXPECT_EQ(pk.noise_rate_hz, 0.0);
}

}  // namespace
}  // namespace kop::pik

// Appended coverage: gang scheduling of process thread groups (§4.2).
namespace kop::pik {
namespace {

double barrier_heavy_runtime(GangScheduler::Policy policy) {
  sim::Engine engine(17);
  PikOs os(engine, hw::phi());
  GangScheduler gang(os, policy, /*groups=*/2);
  // One 8-thread gang (group 0) doing compute+barrier rounds while a
  // second group shares the CPUs.
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  osal::Barrier barrier(os, kThreads);
  sim::Time done_at = 0;
  for (int t = 0; t < kThreads; ++t) {
    os.spawn_thread(
        "gang0-" + std::to_string(t),
        [&, t] {
          for (int r = 0; r < kRounds; ++r) {
            gang.compute(/*group=*/0, /*cpu=*/t, 500 * sim::kMicrosecond);
            barrier.arrive_and_wait();
          }
          done_at = std::max(done_at, engine.now());
        },
        t);
  }
  engine.run();
  return sim::to_seconds(done_at);
}

TEST(Gang, ActiveWindowsAlternate) {
  sim::Engine engine(1);
  PikOs os(engine, hw::phi());
  GangScheduler gang(os, GangScheduler::Policy::kGang, 2,
                     sim::kMillisecond);
  EXPECT_TRUE(gang.active(0, 0, 0));
  EXPECT_FALSE(gang.active(1, 0, 0));
  EXPECT_FALSE(gang.active(0, 0, sim::kMillisecond));
  EXPECT_TRUE(gang.active(1, 0, sim::kMillisecond));
  // Gang policy: all CPUs agree at every instant.
  for (int cpu = 0; cpu < 8; ++cpu)
    EXPECT_TRUE(gang.active(0, cpu, 100));
  EXPECT_EQ(gang.time_to_active(1, 0, 0), sim::kMillisecond);
}

TEST(Gang, UncoordinatedCpusDephase) {
  sim::Engine engine(2);
  PikOs os(engine, hw::phi());
  GangScheduler gang(os, GangScheduler::Policy::kUncoordinated, 2,
                     sim::kMillisecond);
  int active_cpus = 0;
  for (int cpu = 0; cpu < 8; ++cpu)
    if (gang.active(0, cpu, 100)) ++active_cpus;
  EXPECT_GT(active_cpus, 0);
  EXPECT_LT(active_cpus, 8);  // some CPUs run the other group
}

TEST(Gang, GangSchedulingBeatsUncoordinatedOnBarriers) {
  const double gang_s = barrier_heavy_runtime(GangScheduler::Policy::kGang);
  const double unco_s =
      barrier_heavy_runtime(GangScheduler::Policy::kUncoordinated);
  // The gang gets exactly its share (2 groups -> ~2x serial); the
  // dephased version loses additional time at every barrier.
  EXPECT_LT(gang_s * 1.2, unco_s);
}

TEST(Gang, WorkConservesAcrossWindows) {
  sim::Engine engine(3);
  PikOs os(engine, hw::phi());
  GangScheduler gang(os, GangScheduler::Policy::kGang, 2,
                     sim::kMillisecond);
  sim::Time busy = 0;
  os.spawn_thread(
      "t",
      [&] {
        gang.compute(0, 0, 5 * sim::kMillisecond);
        busy = os.cpu(0).busy_time();
      },
      0);
  engine.run();
  // All 5ms of work executed (crossing ~5 inactive windows).
  EXPECT_GE(busy, 5 * sim::kMillisecond);
  EXPECT_GE(engine.now(), 9 * sim::kMillisecond);  // ~2x with 2 groups
}

TEST(Gang, RejectsBadConfig) {
  sim::Engine engine(4);
  PikOs os(engine, hw::phi());
  EXPECT_THROW(GangScheduler(os, GangScheduler::Policy::kGang, 0),
               std::invalid_argument);
  EXPECT_THROW(GangScheduler(os, GangScheduler::Policy::kGang, 2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace kop::pik
