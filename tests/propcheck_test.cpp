// Property-harness tests: the seeded case generator is deterministic
// and round-trips through replay tokens, check_case holds (and its
// digest is stable) on healthy cases, an impossible case produces a
// run-completes violation that the shrinker reduces to a minimal
// still-failing spec, shrunk tokens replay through the schedfuzz
// regression list, and the cost-override registry moves the cache
// fingerprint exactly when it should.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/jobs/cache.hpp"
#include "harness/propcheck/propcheck.hpp"
#include "harness/schedfuzz.hpp"
#include "hw/cost_params.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
using kop::harness::EpccPart;
namespace jobs = kop::harness::jobs;
namespace propcheck = kop::harness::propcheck;
namespace schedfuzz = kop::harness::schedfuzz;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("kop_propcheck_test_" + std::to_string(getpid()) +
                        "_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// The cheapest healthy case: defaults are a tiny EP run on linux-omp.
propcheck::CaseParams tiny_case() { return propcheck::CaseParams{}; }

// EPCC parts need OpenMP directives; the AutoMP paths have none, so
// run_epcc throws.  parse() refuses to build this combination, which
// makes it the canonical hand-constructed "run-completes" failure.
propcheck::CaseParams impossible_case() {
  propcheck::CaseParams p;
  p.kind = jobs::PointSpec::Kind::kEpcc;
  p.path = PathKind::kAutoMpLinux;
  p.threads = 4;
  p.part = EpccPart::kTask;
  p.policy = kop::sim::SchedPolicy::kPct;
  p.sched_seed = 9;
  return p;
}

// --- generator -------------------------------------------------------

TEST(Generator, SameSeedSameCases) {
  propcheck::GenOptions opt;
  opt.seed = 5;
  opt.count = 40;
  const auto a = propcheck::generate(opt);
  const auto b = propcheck::generate(opt);
  ASSERT_EQ(a.size(), 40u);
  ASSERT_EQ(b.size(), 40u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].token(), b[i].token()) << i;

  opt.seed = 6;
  const auto c = propcheck::generate(opt);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_differs = any_differs || a[i].token() != c[i].token();
  EXPECT_TRUE(any_differs) << "seed does not influence generation";
}

TEST(Generator, CasesAreValidDiverseAndTokenizable) {
  propcheck::GenOptions opt;
  opt.seed = 12;
  opt.count = 120;
  const auto cases = propcheck::generate(opt);
  std::set<std::string> machines, paths, policies, kinds;
  for (const auto& c : cases) {
    // Tokens are space-free (the schedfuzz regression format is
    // space-tokenized) and round-trip exactly.
    const std::string tok = c.token();
    EXPECT_EQ(tok.find(' '), std::string::npos) << tok;
    propcheck::CaseParams back;
    ASSERT_TRUE(propcheck::CaseParams::parse(tok, &back)) << tok;
    EXPECT_EQ(back.token(), tok);
    // Generated combinations are runnable: EPCC never lands on AutoMP.
    if (c.kind == jobs::PointSpec::Kind::kEpcc) {
      EXPECT_NE(c.path, PathKind::kAutoMpLinux) << tok;
      EXPECT_NE(c.path, PathKind::kAutoMpNautilus) << tok;
    }
    machines.insert(c.machine);
    paths.insert(kop::core::path_name(c.path));
    policies.insert(kop::sim::sched_policy_name(c.policy));
    kinds.insert(c.kind == jobs::PointSpec::Kind::kNas ? "nas" : "epcc");
  }
  // The sweep actually explores the space (machines x paths x
  // schedulers x workload families).
  EXPECT_EQ(machines.size(), 2u);
  EXPECT_GE(paths.size(), 4u);
  EXPECT_EQ(policies.size(), 3u);
  EXPECT_EQ(kinds.size(), 2u);
}

TEST(Token, RejectsMalformedInput) {
  propcheck::CaseParams p;
  for (const char* bad : {
           "",                        // empty
           "v1;nas",                  // no key=value fields
           "v2;nas;thr=2",            // unknown version
           "v1;quux;thr=2",           // unknown family
           "v1;nas;thr=0",            // out-of-range team
           "v1;nas;bench=ZZ",         // unknown benchmark
           "v1;nas;wat=1",            // unknown key
           "v1;nas;thr",              // missing '='
           "v1;nas;pol=lifo",         // unknown policy
           "v1;epcc;path=linux-automp;part=sync",  // EPCC on a CCK path
           "v1;nas;cs=linux.syscall_ns",        // scale missing
           "v1;nas;cs=plan9.syscall_ns:2.000",  // unknown personality
           "v1;nas;cs=linux.not_a_field:2.000", // unknown field
           "v1;nas;cs=linux.syscall_ns:0.000",  // non-positive scale
           "v1;nas;cs=linux.syscall_ns:2.000,", // trailing empty entry
       }) {
    EXPECT_FALSE(propcheck::CaseParams::parse(bad, &p)) << bad;
  }
}

TEST(Token, CostScalesRoundTripExactly) {
  propcheck::CaseParams p;
  p.path = PathKind::kRtk;
  p.cost_scales.push_back({"nautilus.syscall_ns", 4.0});
  p.cost_scales.push_back({"nautilus.wake_latency_ns", 0.25});
  const std::string tok = p.token();
  EXPECT_NE(tok.find(";cs=nautilus.syscall_ns:4.000,"), std::string::npos)
      << tok;
  propcheck::CaseParams back;
  ASSERT_TRUE(propcheck::CaseParams::parse(tok, &back)) << tok;
  ASSERT_EQ(back.cost_scales.size(), 2u);
  EXPECT_EQ(back.cost_scales[0].key, "nautilus.syscall_ns");
  EXPECT_EQ(back.cost_scales[0].scale, 4.0);  // palette decimals: exact
  EXPECT_EQ(back.cost_scales[1].key, "nautilus.wake_latency_ns");
  EXPECT_EQ(back.cost_scales[1].scale, 0.25);
  EXPECT_EQ(back.token(), tok);
  // The scales reach the materialized point (and thus its cache key),
  // while the prefix -- what a checkpointed sweep shares -- ignores them.
  const jobs::PointSpec spec = back.point();
  ASSERT_EQ(spec.cost_scales.size(), 2u);
  propcheck::CaseParams bare = p;
  bare.cost_scales.clear();
  EXPECT_NE(spec.content_hash(), bare.point().content_hash());
  EXPECT_EQ(spec.prefix_hash(), bare.point().prefix_hash());
}

TEST(Generator, DrawsCostScalesMatchedToThePath) {
  propcheck::GenOptions opt;
  opt.seed = 9;
  opt.count = 160;
  const auto cases = propcheck::generate(opt);
  int with_scales = 0;
  for (const auto& c : cases) {
    if (c.cost_scales.empty()) continue;
    ++with_scales;
    // The personality must match the booted path's cost sheet, or the
    // drawn scale would be skipped at the boundary and test nothing.
    std::string want = "linux.";
    if (c.path == PathKind::kRtk || c.path == PathKind::kAutoMpNautilus)
      want = "nautilus.";
    else if (c.path == PathKind::kPik)
      want = "pik.";
    for (const auto& cs : c.cost_scales) {
      EXPECT_EQ(cs.key.compare(0, want.size(), want), 0)
          << cs.key << " on " << kop::core::path_name(c.path);
      EXPECT_GT(cs.scale, 0.0);
      // Palette values round-trip %.3f exactly.
      propcheck::CaseParams back;
      ASSERT_TRUE(propcheck::CaseParams::parse(c.token(), &back));
      EXPECT_EQ(back.token(), c.token());
    }
  }
  // Roughly a quarter of cases should carry a suffix override.
  EXPECT_GT(with_scales, opt.count / 10);
  EXPECT_LT(with_scales, opt.count / 2);
}

TEST(Token, NumaSchedRoundTripsAndStaysOffHistoricalTokens) {
  // ns=hier is append-only: the flat default emits no ns field at all,
  // so every token minted before the knob existed parses (and
  // re-serializes) byte-identically.
  propcheck::CaseParams p;
  EXPECT_EQ(p.token().find(";ns="), std::string::npos) << p.token();
  p.numa_sched_hier = true;
  const std::string tok = p.token();
  EXPECT_NE(tok.find(";ns=hier"), std::string::npos) << tok;
  propcheck::CaseParams back;
  ASSERT_TRUE(propcheck::CaseParams::parse(tok, &back)) << tok;
  EXPECT_TRUE(back.numa_sched_hier);
  EXPECT_EQ(back.token(), tok);
  // Explicit flat parses too (and normalizes back to the bare token).
  propcheck::CaseParams flat;
  ASSERT_TRUE(propcheck::CaseParams::parse("v1;nas;thr=2;ns=flat", &flat));
  EXPECT_FALSE(flat.numa_sched_hier);
  EXPECT_EQ(flat.token().find(";ns="), std::string::npos);
  // Garbage is rejected like any other malformed field.
  propcheck::CaseParams bad;
  EXPECT_FALSE(propcheck::CaseParams::parse("v1;nas;ns=diagonal", &bad));
  // The knob reaches the materialized point's cache identity.
  propcheck::CaseParams hier;
  hier.numa_sched_hier = true;
  EXPECT_NE(hier.point().canonical(), propcheck::CaseParams{}.point().canonical());
}

TEST(Token, ParseAppliesDefaultsForOmittedKeys) {
  propcheck::CaseParams p;
  ASSERT_TRUE(propcheck::CaseParams::parse("v1;nas;thr=3", &p));
  EXPECT_EQ(p.threads, 3);
  EXPECT_EQ(p.machine, "phi");
  EXPECT_EQ(p.path, PathKind::kLinuxOmp);
  EXPECT_EQ(p.bench, "EP");
  EXPECT_EQ(p.policy, kop::sim::SchedPolicy::kFifo);
}

// --- invariant registry ----------------------------------------------

TEST(Invariants, RegistryIsPopulated) {
  const auto names = propcheck::invariant_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* expected :
       {"run-completes", "time-monotonic", "work-conservation",
        "task-balance", "steal-accounting", "counter-conservation",
        "determinism", "cache-roundtrip", "exactly-once-dispatch",
        "checkpoint-equivalence"}) {
    EXPECT_TRUE(have.count(expected)) << expected;
  }
}

TEST(Invariants, HealthyCaseWithCostScalesPasses) {
  // A late-binding suffix must not upset determinism, checkpoint
  // equivalence, or the cache roundtrip (the scale is in the key).
  const std::string dir = scratch_dir("scaled");
  propcheck::CaseParams p = tiny_case();
  p.cost_scales.push_back({"linux.syscall_ns", 4.0});
  propcheck::CheckOptions opt;
  opt.scratch_dir = dir;
  const auto outcome = propcheck::check_case(p, opt);
  for (const auto& v : outcome.violations)
    ADD_FAILURE() << "[" << v.invariant << "] " << v.detail;
  // The scale must actually change the run, or this test is vacuous.
  const auto bare = propcheck::check_case(tiny_case(), opt);
  EXPECT_NE(outcome.digest, bare.digest);
  fs::remove_all(dir);
}

TEST(Invariants, HealthyCasePassesWithStableDigest) {
  const std::string dir = scratch_dir("healthy");
  propcheck::CheckOptions opt;
  opt.scratch_dir = dir;
  const auto a = propcheck::check_case(tiny_case(), opt);
  const auto b = propcheck::check_case(tiny_case(), opt);
  for (const auto& v : a.violations)
    ADD_FAILURE() << "[" << v.invariant << "] " << v.detail;
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_NE(a.digest, 0u);
  EXPECT_EQ(a.digest, b.digest);
  fs::remove_all(dir);
}

TEST(Invariants, DigestSeparatesSchedulesAndWorkloads) {
  // Filesystem-free check (empty scratch skips cache-roundtrip only).
  // A single-thread case has no scheduling freedom, so the schedule
  // comparison needs a real team.
  const propcheck::CheckOptions opt;
  propcheck::CaseParams wide = tiny_case();
  wide.threads = 4;
  propcheck::CaseParams perturbed = wide;
  perturbed.policy = kop::sim::SchedPolicy::kRandom;
  perturbed.sched_seed = 3;
  const auto base = propcheck::check_case(tiny_case(), opt);
  const auto w = propcheck::check_case(wide, opt);
  const auto r = propcheck::check_case(perturbed, opt);
  EXPECT_TRUE(w.ok());
  EXPECT_TRUE(r.ok());
  // Another workload or interleaving is another observable behavior.
  EXPECT_NE(base.digest, w.digest);
  EXPECT_NE(w.digest, r.digest);
}

TEST(Invariants, ImpossibleCaseFailsRunCompletes) {
  const auto outcome =
      propcheck::check_case(impossible_case(), propcheck::CheckOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.violations.front().invariant, "run-completes");
}

// --- shrinker --------------------------------------------------------

TEST(Shrink, ReducesToMinimalStillFailingCase) {
  const auto failing = impossible_case();
  propcheck::CaseOutcome final_outcome;
  const auto minimal =
      propcheck::shrink(failing, propcheck::CheckOptions{}, &final_outcome);

  // Still failing, for the same reason.
  ASSERT_FALSE(final_outcome.ok());
  EXPECT_EQ(final_outcome.violations.front().invariant, "run-completes");
  // The failure needs kEpcc + an AutoMP path; the shrinker must keep
  // both while simplifying everything irrelevant to it.
  EXPECT_EQ(minimal.kind, jobs::PointSpec::Kind::kEpcc);
  EXPECT_TRUE(minimal.path == PathKind::kAutoMpLinux ||
              minimal.path == PathKind::kAutoMpNautilus);
  EXPECT_EQ(minimal.threads, 1);
  EXPECT_EQ(minimal.policy, kop::sim::SchedPolicy::kFifo);
  EXPECT_EQ(minimal.sched_seed, 0u);
}

TEST(Shrink, DropsAnInertCostScaleSuffix) {
  // The failure is the EPCC-on-AutoMP combination; the cost scales are
  // irrelevant to it, so the shrinker must discard them.
  propcheck::CaseParams p = impossible_case();
  p.cost_scales.push_back({"linux.syscall_ns", 2.0});
  p.cost_scales.push_back({"linux.tick_cost_ns", 0.5});
  propcheck::CaseOutcome final_outcome;
  const auto minimal =
      propcheck::shrink(p, propcheck::CheckOptions{}, &final_outcome);
  ASSERT_FALSE(final_outcome.ok());
  EXPECT_TRUE(minimal.cost_scales.empty()) << minimal.token();
}

TEST(Shrink, PassingCaseComesBackUnchanged) {
  const auto healthy = tiny_case();
  propcheck::CaseOutcome outcome;
  const auto back =
      propcheck::shrink(healthy, propcheck::CheckOptions{}, &outcome);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(back.token(), healthy.token());
}

// --- suite driver ----------------------------------------------------

TEST(Suite, PinnedSeedReproducesTheSuiteDigest) {
  const std::string dir = scratch_dir("suite");
  propcheck::SuiteOptions opt;
  opt.gen.seed = 11;
  opt.gen.count = 6;
  opt.check.scratch_dir = dir;
  const auto a = propcheck::run_suite(opt);
  const auto b = propcheck::run_suite(opt);
  EXPECT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.cases, 6);
  EXPECT_NE(a.suite_digest, 0u);
  EXPECT_EQ(a.suite_digest, b.suite_digest);

  opt.gen.seed = 12;
  const auto c = propcheck::run_suite(opt);
  EXPECT_NE(a.suite_digest, c.suite_digest);
  fs::remove_all(dir);
}

// --- schedfuzz regression-list integration ---------------------------

TEST(Replay, PinnedTokenRunsThroughRegressionList) {
  const std::string dir = scratch_dir("replay");
  fs::create_directories(dir);
  const std::string path = dir + "/regressions.txt";
  {
    std::ofstream out(path);
    out << "# pinned propcheck shrink results\n";
    out << "propcheck:" << tiny_case().token() << " fifo 0\n";
    out << "propcheck:" << tiny_case().token() << " pct 7\n";
  }
  const auto report =
      schedfuzz::replay_regressions(schedfuzz::core_scenarios(), path);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.runs, 2);
  fs::remove_all(dir);
}

TEST(Replay, RegressionLineScheduleOverridesTheToken) {
  // The token says fifo/0 but the line's columns are authoritative --
  // a failing schedule pin must not be weakened by the token text.
  const auto scenario = propcheck::scenario_from_token(tiny_case().token());
  schedfuzz::FuzzConfig cfg;
  cfg.sched.policy = kop::sim::SchedPolicy::kRandom;
  cfg.sched.seed = 123;
  cfg.racecheck = false;
  const auto outcome = scenario.run(cfg);
  EXPECT_TRUE(outcome.wrong.empty()) << outcome.wrong;
}

TEST(Replay, UnparseableTokenFailsLoudly) {
  const auto scenario = propcheck::scenario_from_token("v1;nas;wat=1");
  schedfuzz::FuzzConfig cfg;
  const auto outcome = scenario.run(cfg);
  EXPECT_NE(outcome.wrong.find("unparseable"), std::string::npos)
      << outcome.wrong;
}

// --- cost-override registry (what kop_bisect sweeps) -----------------

TEST(CostOverrides, ScalesMoveTheFingerprintAndClearRestoresIt) {
  kop::hw::clear_cost_scales();
  const std::uint64_t base = jobs::cost_model_fingerprint();

  kop::hw::set_cost_scale("linux.minor_fault_ns", 2.0);
  const std::uint64_t scaled = jobs::cost_model_fingerprint();
  EXPECT_NE(scaled, base);

  // Different scale, different calibration, different keys: the
  // property kop_bisect's cache reuse stands on.
  kop::hw::set_cost_scale("linux.minor_fault_ns", 3.0);
  EXPECT_NE(jobs::cost_model_fingerprint(), base);
  EXPECT_NE(jobs::cost_model_fingerprint(), scaled);

  // Nautilus-personality knobs move it too (shared fingerprint).
  kop::hw::clear_cost_scales();
  kop::hw::set_cost_scale("nautilus.context_switch_ns", 0.5);
  EXPECT_NE(jobs::cost_model_fingerprint(), base);

  kop::hw::clear_cost_scales();
  EXPECT_EQ(jobs::cost_model_fingerprint(), base);
}

TEST(CostOverrides, IdentityScaleIsANoOp) {
  kop::hw::clear_cost_scales();
  const std::uint64_t base = jobs::cost_model_fingerprint();
  kop::hw::set_cost_scale("linux.syscall_ns", 1.0);
  EXPECT_EQ(jobs::cost_model_fingerprint(), base);
  kop::hw::clear_cost_scales();
}

TEST(CostOverrides, UnknownKeyThrowsAndEveryListedKeyWorks) {
  EXPECT_THROW(kop::hw::set_cost_scale("linux.not_a_field", 2.0),
               std::invalid_argument);
  EXPECT_THROW(kop::hw::set_cost_scale("plan9.syscall_ns", 2.0),
               std::invalid_argument);
  // --list-params output is the authoritative key set: every name it
  // prints must be settable.
  const auto names = kop::hw::cost_param_names();
  EXPECT_GE(names.size(), 16u);
  for (const auto& name : names) {
    EXPECT_NO_THROW(kop::hw::set_cost_scale(name, 1.5)) << name;
  }
  kop::hw::clear_cost_scales();
}

}  // namespace
