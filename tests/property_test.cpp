// Parameterized property tests: invariants that must hold across the
// whole configuration space (schedules x team sizes x trip counts,
// barrier algorithms x team sizes, machines x paths, buddy-allocator
// operation sequences).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "core/stack.hpp"
#include "sim/event_queue.hpp"
#include "komp/runtime.hpp"
#include "nautilus/buddy.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"
#include "sim/rng.hpp"

namespace kop {
namespace {

// ------------------------------------------------------------------
// Worksharing coverage: every iteration executes exactly once, no
// matter the schedule, chunk, team size, or trip count.
// ------------------------------------------------------------------

using SchedCase = std::tuple<komp::Schedule, int /*chunk*/, int /*threads*/,
                             std::int64_t /*trip*/>;

class ForLoopCoverage : public ::testing::TestWithParam<SchedCase> {};

TEST_P(ForLoopCoverage, EveryIterationExactlyOnce) {
  const auto [sched, chunk, threads, trip] = GetParam();
  sim::Engine engine(99);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());

  std::map<std::int64_t, int> hits;
  bool in_range = true;
  nk.spawn_thread(
      "main",
      [&] {
        komp::Runtime rt(pt);
        rt.parallel([&](komp::TeamThread& tt) {
          tt.for_loop(sched, chunk, 0, trip,
                      [&](std::int64_t b, std::int64_t e) {
                        if (b < 0 || e > trip || b >= e) in_range = false;
                        for (std::int64_t i = b; i < e; ++i) ++hits[i];
                      });
        });
      },
      0);
  engine.run();

  EXPECT_TRUE(in_range);
  EXPECT_EQ(hits.size(), static_cast<std::size_t>(trip));
  for (const auto& [i, count] : hits)
    ASSERT_EQ(count, 1) << "iteration " << i << " ran " << count << " times";
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ForLoopCoverage,
    ::testing::Combine(
        ::testing::Values(komp::Schedule::kStatic,
                          komp::Schedule::kStaticChunked,
                          komp::Schedule::kDynamic, komp::Schedule::kGuided),
        ::testing::Values(1, 7, 64),
        ::testing::Values(1, 3, 8, 32),
        ::testing::Values<std::int64_t>(0, 1, 13, 100, 1000)));

// ------------------------------------------------------------------
// Barrier correctness under both algorithms and odd team sizes.
// ------------------------------------------------------------------

using BarrierCase = std::tuple<komp::RuntimeTuning::BarrierAlgo, int>;

class BarrierProperty : public ::testing::TestWithParam<BarrierCase> {};

TEST_P(BarrierProperty, NoThreadPassesEarlyOverManyRounds) {
  const auto [algo, threads] = GetParam();
  sim::Engine engine(7);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());

  constexpr int kRounds = 12;
  std::vector<int> round_count(kRounds, 0);
  bool violation = false;
  nk.spawn_thread(
      "main",
      [&] {
        komp::RuntimeTuning tuning;
        tuning.barrier_algo = algo;
        komp::Runtime rt(pt, tuning);
        rt.parallel([&, threads = threads](komp::TeamThread& tt) {
          for (int r = 0; r < kRounds; ++r) {
            // Stagger arrivals pseudo-randomly.
            tt.compute_ns(100 * ((tt.id() * 31 + r * 17) % 13 + 1));
            ++round_count[static_cast<std::size_t>(r)];
            tt.barrier();
            // After the barrier, the whole team must have arrived.
            if (round_count[static_cast<std::size_t>(r)] != threads)
              violation = true;
          }
        });
      },
      0);
  engine.run();
  EXPECT_FALSE(violation);
  for (int r = 0; r < kRounds; ++r)
    EXPECT_EQ(round_count[static_cast<std::size_t>(r)],
              std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, BarrierProperty,
    ::testing::Combine(
        ::testing::Values(komp::RuntimeTuning::BarrierAlgo::kCentralized,
                          komp::RuntimeTuning::BarrierAlgo::kTree),
        ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31, 64)));

// ------------------------------------------------------------------
// Reductions agree with the serial answer for every op / team size.
// ------------------------------------------------------------------

class ReduceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReduceProperty, MatchesSerialForAllOps) {
  const int threads = GetParam();
  sim::Engine engine(3);
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());

  double sum = 0, prod = 0, mn = 0, mx = 0;
  nk.spawn_thread(
      "main",
      [&] {
        komp::Runtime rt(pt);
        rt.parallel([&](komp::TeamThread& tt) {
          const double v = static_cast<double>(tt.id() + 1);
          const double s = tt.reduce(v, komp::ReduceOp::kSum);
          const double p = tt.reduce(2.0, komp::ReduceOp::kProd);
          const double lo = tt.reduce(v, komp::ReduceOp::kMin);
          const double hi = tt.reduce(v, komp::ReduceOp::kMax);
          if (tt.id() == tt.nthreads() - 1) {
            sum = s;
            prod = p;
            mn = lo;
            mx = hi;
          }
        });
      },
      0);
  engine.run();

  const double n = threads;
  EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2);
  EXPECT_DOUBLE_EQ(prod, std::pow(2.0, n));
  EXPECT_DOUBLE_EQ(mn, 1.0);
  EXPECT_DOUBLE_EQ(mx, n);
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, ReduceProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64));

// ------------------------------------------------------------------
// Buddy allocator: randomized alloc/free sequences keep invariants.
// ------------------------------------------------------------------

class BuddyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyProperty, RandomSequencesPreserveInvariants) {
  sim::Rng rng(GetParam());
  nautilus::BuddyAllocator buddy(1ULL << 30, 8ULL << 20, 4096);
  const std::uint64_t cap = buddy.capacity();

  std::map<std::uint64_t, std::uint64_t> live;  // addr -> requested
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      const std::uint64_t bytes = 1ULL << rng.uniform_int(6, 18);
      try {
        const std::uint64_t addr = buddy.alloc(bytes);
        // In-range and non-overlapping with everything live.
        ASSERT_GE(addr, buddy.base());
        ASSERT_LE(addr + bytes, buddy.base() + cap);
        for (const auto& [a, sz] : live) {
          const std::uint64_t a_end = a + std::max<std::uint64_t>(sz, 4096);
          const std::uint64_t b_end = addr + std::max<std::uint64_t>(bytes, 4096);
          ASSERT_TRUE(addr >= a_end || a >= b_end)
              << "overlap " << addr << " vs " << a;
        }
        live[addr] = bytes;
      } catch (const nautilus::BuddyError&) {
        // OOM is legal; the allocator must still be consistent.
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      buddy.free(it->first);
      live.erase(it);
    }
    ASSERT_LE(buddy.allocated_bytes(), cap);
  }
  for (const auto& [a, sz] : live) buddy.free(a);
  EXPECT_EQ(buddy.allocated_bytes(), 0u);
  EXPECT_EQ(buddy.largest_free_block(), cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------------------
// Translation model monotonicity: more working set or smaller pages
// never *reduce* the miss rate.
// ------------------------------------------------------------------

class TlbMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(TlbMonotonic, MissRateMonotoneInWorkingSet) {
  const auto machine =
      GetParam() == 0 ? hw::phi() : hw::xeon8();
  hw::MemRegion region("r", 8ULL << 30);
  region.set_page_size(hw::PageSize::k2M);
  region.set_small_page_fraction(0.2);
  for (auto pattern :
       {hw::AccessPattern::kStreaming, hw::AccessPattern::kRandom,
        hw::AccessPattern::kBlocked}) {
    double prev = -1.0;
    for (std::uint64_t ws = 1ULL << 20; ws <= 4ULL << 30; ws <<= 2) {
      const auto tc = hw::translation_cost(machine.tlb, region, ws, pattern);
      ASSERT_GE(tc.tlb_miss_rate, prev)
          << "pattern " << static_cast<int>(pattern) << " ws " << ws;
      ASSERT_GE(tc.tlb_miss_rate, 0.0);
      ASSERT_LE(tc.tlb_miss_rate, 1.0);
      prev = tc.tlb_miss_rate;
    }
  }
}

TEST_P(TlbMonotonic, SmallerPagesNeverMissLess) {
  const auto machine = GetParam() == 0 ? hw::phi() : hw::xeon8();
  for (std::uint64_t ws = 16ULL << 20; ws <= 2ULL << 30; ws <<= 2) {
    hw::MemRegion big("b", 8ULL << 30);
    big.set_page_size(hw::PageSize::k1G);
    hw::MemRegion mid("m", 8ULL << 30);
    mid.set_page_size(hw::PageSize::k2M);
    hw::MemRegion small("s", 8ULL << 30);
    small.set_page_size(hw::PageSize::k4K);
    const auto rb = hw::translation_cost(machine.tlb, big, ws,
                                         hw::AccessPattern::kRandom);
    const auto rm = hw::translation_cost(machine.tlb, mid, ws,
                                         hw::AccessPattern::kRandom);
    const auto rs = hw::translation_cost(machine.tlb, small, ws,
                                         hw::AccessPattern::kRandom);
    EXPECT_LE(rb.tlb_miss_rate, rm.tlb_miss_rate + 1e-12);
    EXPECT_LE(rm.tlb_miss_rate, rs.tlb_miss_rate + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, TlbMonotonic, ::testing::Values(0, 1));

// ------------------------------------------------------------------
// Random task graphs complete, for every team size.
// ------------------------------------------------------------------

class TaskGraphProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(TaskGraphProperty, RandomNestedGraphsComplete) {
  const auto [threads, seed] = GetParam();
  sim::Engine engine(static_cast<std::uint64_t>(seed));
  nautilus::NautilusKernel nk(engine, hw::phi());
  nk.set_env("OMP_NUM_THREADS", std::to_string(threads));
  pthread_compat::Pthreads pt(nk, pthread_compat::nautilus_native_tuning());

  int created = 0;
  int executed = 0;
  std::function<void(komp::TeamThread&, sim::Rng&, int)> spawn_random =
      [&](komp::TeamThread& tt, sim::Rng& rng, int depth) {
        ++executed;
        if (depth == 0) return;
        const int kids = static_cast<int>(rng.uniform_int(0, 3));
        for (int k = 0; k < kids; ++k) {
          ++created;
          const auto child_seed = rng.next_u64();
          tt.task([&spawn_random, child_seed, depth](komp::TeamThread& ex) {
            sim::Rng child_rng(child_seed);
            spawn_random(ex, child_rng, depth - 1);
          });
        }
        if (rng.bernoulli(0.5)) tt.taskwait();
      };

  nk.spawn_thread(
      "main",
      [&] {
        komp::Runtime rt(pt);
        rt.parallel([&](komp::TeamThread& tt) {
          sim::Rng rng(static_cast<std::uint64_t>(seed) * 977 +
                       static_cast<std::uint64_t>(tt.id()));
          ++created;  // count the root "task" (the implicit one)
          spawn_random(tt, rng, 4);
        });
      },
      0);
  engine.run();
  // Every created task ran exactly once (executed counts roots too).
  EXPECT_EQ(executed, created);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, TaskGraphProperty,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(11, 22, 33, 44)));

// ------------------------------------------------------------------
// Full-stack determinism: every path, same seed -> identical time.
// ------------------------------------------------------------------

class PathDeterminism
    : public ::testing::TestWithParam<core::PathKind> {};

TEST_P(PathDeterminism, SameSeedSameVirtualTime) {
  auto run_once = [&] {
    core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = GetParam();
    cfg.num_threads = 8;
    cfg.app_static_bytes = 0;
    auto stack = core::Stack::create(cfg);
    if (stack->is_omp_path()) {
      stack->run_omp_app([](komp::Runtime& rt) {
        rt.parallel([](komp::TeamThread& tt) {
          tt.for_loop(komp::Schedule::kDynamic, 2, 0, 64,
                      [&](std::int64_t b, std::int64_t e) {
                        tt.compute_ns(5000 * (e - b));
                      });
        });
        return 0;
      });
    } else {
      stack->run_cck_app([](osal::Os& os, virgil::Virgil& vg) {
        virgil::CountdownLatch latch(os, 32);
        for (int i = 0; i < 32; ++i) {
          vg.submit([&os, &latch] {
            os.compute_ns(5000);
            latch.count_down();
          });
        }
        latch.wait();
        return 0;
      });
    }
    return stack->engine().now();
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, PathDeterminism,
    ::testing::Values(core::PathKind::kLinuxOmp, core::PathKind::kRtk,
                      core::PathKind::kPik, core::PathKind::kAutoMpLinux,
                      core::PathKind::kAutoMpNautilus));

// ------------------------------------------------------------------
// Ready-queue policies: worksharing coverage and dispatch determinism
// must survive schedule perturbation (fifo / random / PCT), per seed.
// ------------------------------------------------------------------

using SchedPolicyCase = std::tuple<sim::SchedPolicy, std::uint64_t /*seed*/>;

class SchedPolicyProperty : public ::testing::TestWithParam<SchedPolicyCase> {
 protected:
  struct Run {
    std::map<std::int64_t, int> hits;
    sim::Time end_time = 0;
    std::uint64_t digest = 0;
  };

  Run run_once() {
    const auto [policy, seed] = GetParam();
    core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = core::PathKind::kRtk;
    cfg.num_threads = 4;
    cfg.app_static_bytes = 0;
    cfg.sched.policy = policy;
    cfg.sched.seed = seed;
    auto stack = core::Stack::create(cfg);
    Run run;
    stack->run_omp_app([&](komp::Runtime& rt) {
      rt.parallel([&](komp::TeamThread& tt) {
        tt.for_loop(komp::Schedule::kDynamic, 3, 0, 97,
                    [&](std::int64_t b, std::int64_t e) {
                      for (std::int64_t i = b; i < e; ++i) ++run.hits[i];
                      tt.compute_ns(1000);
                    });
        for (int i = 0; i < 4; ++i) {
          tt.task([](komp::TeamThread& ex) { ex.compute_ns(500); });
        }
        tt.barrier();
      });
      return 0;
    });
    run.end_time = stack->engine().now();
    run.digest = stack->engine().stats().dispatch_digest;
    return run;
  }
};

TEST_P(SchedPolicyProperty, CoverageHoldsUnderAnyInterleaving) {
  const auto run = run_once();
  ASSERT_EQ(run.hits.size(), 97u);
  for (const auto& [i, count] : run.hits)
    ASSERT_EQ(count, 1) << "iteration " << i;
}

TEST_P(SchedPolicyProperty, SameSeedSameDispatchDigest) {
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.digest, b.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedPolicyProperty,
    ::testing::Combine(::testing::Values(sim::SchedPolicy::kFifo,
                                         sim::SchedPolicy::kRandom,
                                         sim::SchedPolicy::kPct),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

// ------------------------------------------------------------------
// Calendar-queue overflow horizon: events beyond the ring's window
// (kBuckets * kBucketWidthNs) park in the overflow heap and must still
// fire in exact time order, interleaved with near-term traffic.
// ------------------------------------------------------------------

class OverflowHorizon : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverflowHorizon, FarFutureSleepsFireInOrder) {
  const sim::Time horizon =
      static_cast<sim::Time>(sim::EventQueue::kBuckets) *
      sim::EventQueue::kBucketWidthNs;
  sim::Engine engine(GetParam());
  sim::Rng rng(GetParam() * 1315423911ULL + 1);

  // A mix of in-window posts and posts up to ~500 horizons out,
  // shuffled so insertion order correlates with nothing.
  std::vector<sim::Time> deadlines;
  for (int i = 0; i < 200; ++i) {
    deadlines.push_back(rng.uniform_int(1, static_cast<std::int64_t>(horizon)));
  }
  for (int i = 0; i < 200; ++i) {
    deadlines.push_back(
        horizon + rng.uniform_int(1, 500 * static_cast<std::int64_t>(horizon)));
  }
  for (std::size_t i = deadlines.size() - 1; i > 0; --i) {
    std::swap(deadlines[i],
              deadlines[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i)))]);
  }

  std::vector<sim::Time> fired;
  for (const sim::Time t : deadlines) {
    engine.post_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  // Plus fibers whose sleeps hop the horizon repeatedly: each sleep
  // re-parks the thread's wake in the overflow heap, and the window
  // must migrate it back as the clock advances.
  std::vector<sim::Time> wakes;
  for (int t = 0; t < 3; ++t) {
    auto* st = engine.spawn("sleeper" + std::to_string(t), [&, t] {
      for (int hop = 0; hop < 5; ++hop) {
        engine.sleep_for(horizon * static_cast<sim::Time>(t + 2) + 13);
        wakes.push_back(engine.now());
      }
    });
    engine.wake(st);
  }
  engine.run();

  ASSERT_EQ(fired.size(), deadlines.size());
  std::vector<sim::Time> sorted = deadlines;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    // Fired at the exact requested instant, in global time order.
    ASSERT_EQ(fired[i], sorted[i]) << "event " << i;
  }
  ASSERT_EQ(wakes.size(), 15u);
  for (std::size_t i = 1; i < wakes.size(); ++i)
    ASSERT_GE(wakes[i], wakes[i - 1]);
}

TEST_P(OverflowHorizon, DigestIsStableAcrossRuns) {
  auto once = [&] {
    const sim::Time horizon =
        static_cast<sim::Time>(sim::EventQueue::kBuckets) *
        sim::EventQueue::kBucketWidthNs;
    sim::Engine engine(GetParam(), {sim::SchedPolicy::kPct, GetParam()});
    for (int t = 0; t < 4; ++t) {
      auto* st = engine.spawn("hopper" + std::to_string(t), [&engine, horizon,
                                                            t] {
        // Alternate short hops with jumps most of a horizon out, so the
        // wake events keep crossing the ring/overflow boundary.
        for (int hop = 0; hop < 4; ++hop)
          engine.sleep_for((t + 1) * 3 *
                           (hop % 2 == 0 ? sim::Time(1) : horizon / 2));
      });
      engine.wake(st);
    }
    engine.post_at(90 * horizon, [] {});
    engine.run();
    return engine.stats().dispatch_digest;
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverflowHorizon,
                         ::testing::Values(1, 17, 23));

}  // namespace
}  // namespace kop

// Appended coverage: compiler fuzzing -- random loop bodies must keep
// the parallelizer's invariants.
#include "cck/parallelizer.hpp"
#include "cck/pdg.hpp"

namespace kop {
namespace {

class CompilerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompilerFuzz, PlansAreConsistentWithThePdg) {
  sim::Rng rng(GetParam());
  cck::Function fn;
  fn.name = "main";
  fn.declare({"arr", 1 << 20, true});
  fn.declare({"work", 1 << 16, true});
  fn.declare({"s1", 8, false});
  fn.declare({"s2", 8, false});
  const char* vars[] = {"arr", "work", "s1", "s2"};

  for (int trial = 0; trial < 30; ++trial) {
    cck::Loop loop;
    loop.name = "fuzz";
    loop.trip = 1 + static_cast<std::int64_t>(rng.uniform_int(0, 5000));
    loop.omp.parallel_for = rng.bernoulli(0.7);
    if (rng.bernoulli(0.3)) loop.omp.private_vars.push_back("work");
    if (rng.bernoulli(0.3)) loop.omp.private_vars.push_back("s1");
    if (rng.bernoulli(0.2)) loop.omp.reduction_vars.push_back("s2");
    const int stmts = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int s = 0; s < stmts; ++s) {
      cck::Stmt st;
      st.label = "s" + std::to_string(s);
      st.est_cost_ns = rng.uniform(50.0, 5000.0);
      const int accesses = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int a = 0; a < accesses; ++a) {
        cck::Access acc;
        acc.var = vars[rng.uniform_int(0, 3)];
        acc.write = rng.bernoulli(0.5);
        acc.per_iteration = rng.bernoulli(0.6);
        acc.carried = !acc.per_iteration && rng.bernoulli(0.3);
        st.accesses.push_back(acc);
      }
      loop.body.push_back(st);
    }
    loop.exec.per_iter_ns = loop.est_iter_cost_ns();

    const cck::Pdg pdg = cck::Pdg::build(fn, loop, true);
    cck::Parallelizer par(cck::ParallelizerOptions{true, 50'000.0, 16});
    const cck::LoopPlan plan = par.plan(fn, loop);

    // 1. DOALL if and only if the metadata-aware PDG is carried-free.
    if (plan.tech == cck::Technique::kDoall)
      EXPECT_FALSE(pdg.has_loop_carried_dep());
    if (!pdg.has_loop_carried_dep())
      EXPECT_EQ(plan.tech, cck::Technique::kDoall);

    // 2. Chunks stay within the iteration space.
    if (plan.tech != cck::Technique::kSequential) {
      EXPECT_GE(plan.chunk, 1);
      EXPECT_LE(plan.chunk, std::max<std::int64_t>(1, loop.trip));
    }

    // 3. Privatization notes only appear when the PDG recorded a
    // blocked object.
    for (const auto& note : plan.notes) {
      if (note.find("privatization") != std::string::npos)
        EXPECT_FALSE(pdg.unsupported_privatization().empty());
    }

    // 4. Pipeline fractions are sane.
    EXPECT_GE(plan.parallel_fraction, 0.0);
    EXPECT_LE(plan.parallel_fraction, 1.0);

    // 5. The report printer never crashes on fuzzed shapes.
    (void)pdg.to_dot(loop);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace kop
