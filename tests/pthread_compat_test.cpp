// Tests for the pthreads compatibility layer and its three flavors
// (glibc-on-Linux, PTE port, customized native -- Fig. 2a vs 2b).
#include <gtest/gtest.h>

#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "pthread_compat/pthreads.hpp"

namespace kop::pthread_compat {
namespace {

TEST(Pthreads, CreateJoinReturnsValue) {
  sim::Engine eng(1);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Pthreads pt(nk, nautilus_native_tuning());
  int result = 0;
  nk.spawn_thread(
      "main",
      [&] {
        int arg = 20;
        PthreadAttr attr;
        attr.bound_cpu = 3;
        Pthread* t = pt.create(
            &attr,
            [](void* a) -> void* {
              *static_cast<int*>(a) += 22;
              return a;
            },
            &arg);
        void* rv = pt.join(t);
        result = *static_cast<int*>(rv);
      },
      0);
  eng.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(pt.threads_created(), 1u);
}

TEST(Pthreads, MutexCondBarrierWork) {
  sim::Engine eng(2);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Pthreads pt(nk, nautilus_native_tuning());
  int counter = 0;
  nk.spawn_thread(
      "main",
      [&] {
        auto mutex = pt.make_mutex();
        auto barrier = pt.make_barrier(5);  // 4 workers + main
        std::vector<Pthread*> threads;
        struct Ctx {
          Pthreads* pt;
          PthreadMutex* m;
          PthreadBarrier* b;
          int* counter;
        } ctx{&pt, mutex.get(), barrier.get(), &counter};
        for (int i = 0; i < 4; ++i) {
          threads.push_back(pt.create(
              nullptr,
              [](void* p) -> void* {
                auto* c = static_cast<Ctx*>(p);
                for (int k = 0; k < 10; ++k) {
                  c->m->lock();
                  ++*c->counter;
                  c->m->unlock();
                }
                c->b->wait();
                return nullptr;
              },
              &ctx));
        }
        barrier->wait();
        EXPECT_EQ(counter, 40);  // barrier ordered all increments first
        for (auto* t : threads) pt.join(t);
      },
      0);
  eng.run();
  EXPECT_EQ(counter, 40);
}

TEST(Pthreads, CondVarTimedwait) {
  sim::Engine eng(3);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Pthreads pt(nk, nautilus_native_tuning());
  bool timed_out = false;
  nk.spawn_thread(
      "main",
      [&] {
        auto m = pt.make_mutex();
        auto cv = pt.make_cond();
        m->lock();
        timed_out = !cv->timedwait(*m, eng.now() + 10'000);
        m->unlock();
      },
      0);
  eng.run();
  EXPECT_TRUE(timed_out);
}

TEST(Pthreads, KeySpecificIsPerThread) {
  sim::Engine eng(4);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Pthreads pt(nk, nautilus_native_tuning());
  void* main_val = nullptr;
  void* worker_val = nullptr;
  nk.spawn_thread(
      "main",
      [&] {
        const int key = pt.key_create();
        int a = 1, b = 2;
        pt.set_specific(key, &a);
        struct Ctx {
          Pthreads* pt;
          int key;
          int* b;
          void** out;
        } ctx{&pt, key, &b, &worker_val};
        Pthread* t = pt.create(
            nullptr,
            [](void* p) -> void* {
              auto* c = static_cast<Ctx*>(p);
              EXPECT_EQ(c->pt->get_specific(c->key), nullptr);  // fresh
              c->pt->set_specific(c->key, c->b);
              *c->out = c->pt->get_specific(c->key);
              return nullptr;
            },
            &ctx);
        pt.join(t);
        main_val = pt.get_specific(key);
        EXPECT_EQ(main_val, &a);
        EXPECT_EQ(worker_val, &b);
      },
      0);
  eng.run();
  EXPECT_NE(main_val, nullptr);
}

TEST(Pthreads, PtePortIsSlowerThanNative) {
  // Fig. 2a vs 2b: the layered PTE port pays per-op indirection that
  // the customized implementation avoids.
  auto run_with = [](Pthreads::Tuning tuning) {
    sim::Engine eng(5);
    nautilus::NautilusKernel nk(eng, hw::phi());
    Pthreads pt(nk, tuning);
    sim::Time elapsed = 0;
    nk.spawn_thread(
        "main",
        [&] {
          auto m = pt.make_mutex();
          const sim::Time t0 = eng.now();
          for (int i = 0; i < 1000; ++i) {
            m->lock();
            m->unlock();
          }
          elapsed = eng.now() - t0;
        },
        0);
    eng.run();
    return elapsed;
  };
  const sim::Time pte = run_with(nautilus_pte_tuning());
  const sim::Time native = run_with(nautilus_native_tuning());
  EXPECT_GT(pte, native);
  EXPECT_GT(static_cast<double>(pte) / static_cast<double>(native), 1.5);
}

TEST(Pthreads, OnThreadCreateHookFires) {
  sim::Engine eng(6);
  linuxmodel::LinuxOs os(eng, hw::phi());
  auto tuning = linux_glibc_tuning();
  int hook_calls = 0;
  tuning.on_thread_create = [&] { ++hook_calls; };
  Pthreads pt(os, tuning);
  os.spawn_thread(
      "main",
      [&] {
        Pthread* t = pt.create(nullptr, [](void*) -> void* { return nullptr; },
                               nullptr);
        pt.join(t);
      },
      0);
  eng.run();
  EXPECT_EQ(hook_calls, 1);
}

TEST(Pthreads, SelfOutsidePoolIsMainHandle) {
  sim::Engine eng(7);
  nautilus::NautilusKernel nk(eng, hw::phi());
  Pthreads pt(nk, nautilus_native_tuning());
  Pthread* seen = nullptr;
  nk.spawn_thread("main", [&] { seen = pt.self(); }, 0);
  eng.run();
  EXPECT_NE(seen, nullptr);
}

}  // namespace
}  // namespace kop::pthread_compat
