// Dispatch-order pinning for the calendar event queue.
//
// The golden arrays were generated from the engine BEFORE the
// priority_queue -> calendar-queue swap (the scripted scenario mixes
// same-instant bursts, out-of-order posts, yield ping-pong, sleeps,
// and dispatch-time posts).  Any future queue change that reorders
// dispatch under any SchedPolicy breaks these -- and with them the
// byte-identity of every figure in the evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_deque.hpp"
#include "sim/rng.hpp"

namespace kop::sim {
namespace {

// Generated pre-swap by the same scenario below (see the file comment).
constexpr int kGoldenFifo[] = {0, 1, 2, 3, 10, 11, 100, 110, 120,
                               101, 111, 121, 102, 112, 122, 20, 21,
                               200, 201, 202, 30, 31, 32};
constexpr int kGoldenRandom7[] = {1, 2, 3, 0, 10, 11, 120, 100, 110,
                                  111, 112, 101, 102, 121, 122, 20, 21,
                                  200, 201, 202, 30, 32, 31};
constexpr int kGoldenRandom21[] = {1, 2, 0, 3, 11, 10, 110, 120, 121,
                                   100, 101, 102, 122, 111, 112, 200, 20,
                                   21, 201, 202, 30, 31, 32};
constexpr int kGoldenPct7[] = {1, 2, 3, 0, 10, 11, 110, 111, 112,
                               100, 101, 102, 120, 121, 122, 20, 21,
                               200, 201, 202, 30, 31, 32};
constexpr int kGoldenPct13[] = {3, 0, 1, 2, 10, 11, 110, 111, 112,
                                120, 121, 122, 100, 101, 102, 20, 21,
                                200, 201, 202, 30, 31, 32};

std::vector<int> scripted_order(SchedPolicy policy, std::uint64_t seed) {
  Engine eng(42, SchedConfig{policy, seed});
  std::vector<int> order;
  // Same-instant burst at t=0.
  for (int i = 0; i < 4; ++i)
    eng.post_at(0, [&order, i] { order.push_back(i); });
  // Two instants posted out of order.
  eng.post_at(200, [&order] { order.push_back(20); });
  eng.post_at(100, [&order] { order.push_back(10); });
  eng.post_at(200, [&order] { order.push_back(21); });
  eng.post_at(100, [&order] { order.push_back(11); });
  // Threads that interleave via yield at one instant.
  for (int t = 0; t < 3; ++t) {
    auto* th = eng.spawn("t" + std::to_string(t), [&eng, &order, t] {
      for (int k = 0; k < 3; ++k) {
        order.push_back(100 + 10 * t + k);
        eng.yield_now();
      }
      eng.sleep_for(50 + t);
      order.push_back(200 + t);
    });
    eng.wake_at(th, 150);
  }
  // A callback that posts more same-instant work from inside dispatch.
  eng.post_at(300, [&eng, &order] {
    order.push_back(30);
    eng.post_at(300, [&order] { order.push_back(31); });
    eng.post_at(300, [&order] { order.push_back(32); });
  });
  eng.run();
  return order;
}

template <std::size_t N>
std::vector<int> as_vec(const int (&a)[N]) {
  return std::vector<int>(a, a + N);
}

TEST(QueueOrder, GoldenFifo) {
  EXPECT_EQ(scripted_order(SchedPolicy::kFifo, 0), as_vec(kGoldenFifo));
}

TEST(QueueOrder, GoldenRandom) {
  EXPECT_EQ(scripted_order(SchedPolicy::kRandom, 7), as_vec(kGoldenRandom7));
  EXPECT_EQ(scripted_order(SchedPolicy::kRandom, 21), as_vec(kGoldenRandom21));
}

TEST(QueueOrder, GoldenPct) {
  EXPECT_EQ(scripted_order(SchedPolicy::kPct, 7), as_vec(kGoldenPct7));
  EXPECT_EQ(scripted_order(SchedPolicy::kPct, 13), as_vec(kGoldenPct13));
}

// Property: same-instant callbacks under FIFO dispatch in posting order,
// regardless of how many earlier/later instants surround them.
TEST(QueueOrder, FifoSameInstantIsPostingOrder) {
  Engine eng;
  std::vector<int> order;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    // Same tag interleaved across three instants; FIFO must keep the
    // per-instant sequences in posting order.
    const Time at = static_cast<Time>(100 * (rng.next_u64() % 3));
    eng.post_at(at, [&order, i] { order.push_back(i); });
  }
  eng.run();
  // Events at one instant must appear in ascending posting index.
  // (Across instants order follows time, so a stable per-instant sort
  // of the observed order must reproduce 0..199 exactly when grouped.)
  std::vector<int> seen_last(3, -1);
  // Replay which instant each index went to.
  Rng rng2(99);
  std::vector<int> instant_of(200);
  for (int i = 0; i < 200; ++i)
    instant_of[i] = static_cast<int>(rng2.next_u64() % 3);
  for (int idx : order) {
    EXPECT_LT(seen_last[instant_of[idx]], idx)
        << "same-instant FIFO order violated at index " << idx;
    seen_last[instant_of[idx]] = idx;
  }
}

// Model check: EventQueue against a reference min-heap on (at, key,
// seq) under adversarial interleavings of pushes and pops, with
// horizons spanning the same-instant fast path, the calendar ring, and
// the overflow heap.
TEST(QueueOrder, MatchesReferenceHeapModel) {
  struct Ref {
    Time at;
    std::uint64_t key;
    std::uint64_t seq;
  };
  auto ref_later = [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at > b.at;
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  };
  for (const bool keyed : {false, true}) {
    EventQueue q(keyed);
    std::priority_queue<Ref, std::vector<Ref>, decltype(ref_later)> model(
        ref_later);
    Rng rng(keyed ? 1234 : 4321);
    std::uint64_t seq = 0;
    Time now = 0;
    for (int step = 0; step < 20000; ++step) {
      const bool do_push = model.empty() || rng.next_u64() % 100 < 55;
      if (do_push) {
        Event ev;
        // Mix: same-instant repeats, near ring, and far overflow.
        const std::uint64_t r = rng.next_u64() % 100;
        if (r < 30) {
          ev.at = now;
        } else if (r < 90) {
          ev.at = now + static_cast<Time>(rng.next_u64() % 100000);
        } else {
          ev.at = now + static_cast<Time>(rng.next_u64() % 50'000'000);
        }
        ev.seq = seq++;
        ev.key = keyed ? rng.next_u64() : 0;
        q.push(ev);
        model.push(Ref{ev.at, ev.key, ev.seq});
      } else {
        ASSERT_EQ(q.next_time(), model.top().at) << "step " << step;
        const Event got = q.pop();
        const Ref want = model.top();
        model.pop();
        ASSERT_EQ(got.at, want.at) << "step " << step;
        ASSERT_EQ(got.key, want.key) << "step " << step;
        ASSERT_EQ(got.seq, want.seq) << "step " << step;
        now = got.at;  // engine invariant: pushes never precede now
      }
      ASSERT_EQ(q.size(), model.size());
    }
    while (!model.empty()) {
      const Event got = q.pop();
      const Ref want = model.top();
      model.pop();
      ASSERT_EQ(got.at, want.at);
      ASSERT_EQ(got.seq, want.seq);
    }
    EXPECT_TRUE(q.empty());
  }
}

// A warm queue cycling through a fixed working set must stop allocating.
TEST(QueueOrder, WarmQueueStopsAllocating) {
  EventQueue q(false);
  Rng rng(5);
  std::uint64_t seq = 0;
  Time now = 0;
  auto cycle = [&] {
    for (int i = 0; i < 2000; ++i) {
      Event ev;
      ev.at = now + static_cast<Time>(rng.next_u64() % 4096);
      ev.seq = seq++;
      q.push(ev);
    }
    while (!q.empty()) now = q.pop().at;
  };
  for (int warm = 0; warm < 12; ++warm) cycle();
  const std::uint64_t allocs_before = q.allocs();
  for (int rep = 0; rep < 5; ++rep) cycle();
  EXPECT_EQ(q.allocs(), allocs_before)
      << "warm queue allocated in steady state";
}

TEST(RingDeque, FifoAndLifoAcrossGrowth) {
  RingDeque<int> d;
  // Interleave push/pop so head wraps, then force growth mid-wrap.
  for (int i = 0; i < 10; ++i) d.push_back(i);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(d.front(), i);
    d.pop_front();
  }
  for (int i = 10; i < 200; ++i) d.push_back(i);  // grows, head != 0
  EXPECT_EQ(d.size(), 193u);
  for (int i = 7; i < 100; ++i) {
    EXPECT_EQ(d.front(), i);
    d.pop_front();
  }
  for (int i = 199; i >= 150; --i) {
    EXPECT_EQ(d.back(), i);
    d.pop_back();
  }
  EXPECT_EQ(d.size(), 50u);
  d.clear();
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace kop::sim
