// Tests for the RTK path: boot-image constraint, shell launch,
// OpenMP-in-kernel execution, pthread flavor selection.
#include <gtest/gtest.h>

#include "rtk/rtk.hpp"

namespace kop::rtk {
namespace {

RtkOptions small_options() {
  RtkOptions o;
  o.machine = hw::phi();
  o.app_static_bytes = 64ULL << 20;
  return o;
}

TEST(Rtk, BootsAndRunsOmpApp) {
  RtkStack stack(small_options());
  int team = 0;
  const int code = stack.run_app([&](komp::Runtime& rt) {
    rt.parallel(8, [&](komp::TeamThread& tt) {
      if (tt.id() == 0) team = tt.nthreads();
      tt.compute_ns(1000);
    });
    return 5;
  });
  EXPECT_EQ(code, 5);
  EXPECT_EQ(team, 8);
}

TEST(Rtk, MainBecomesShellCommand) {
  RtkStack stack(small_options());
  stack.register_app("nas-bt", [](komp::Runtime&) { return 3; });
  EXPECT_TRUE(stack.kernel().has_shell_command("nas-bt"));
  EXPECT_EQ(stack.run_shell("nas-bt"), 3);
}

TEST(Rtk, ClassCStaticsOverlapMmioAtBoot) {
  RtkOptions o = small_options();
  o.app_static_bytes = 3400ULL << 20;  // class-C gigabyte globals
  EXPECT_THROW(RtkStack{o}, nautilus::BootOverlapError);
}

TEST(Rtk, DynamicAllocationAvoidsTheOverlap) {
  // §6.2: converting static arrays to startup-time dynamic allocation
  // shrinks the boot image.
  RtkOptions o = small_options();
  o.app_static_bytes = 0;  // moved to malloc at app start
  RtkStack stack(o);
  bool allocated = false;
  stack.run_app([&](komp::Runtime& rt) {
    auto* r = rt.os().alloc_region("u", 3400ULL << 20,
                                   osal::AllocPolicy::local());
    allocated = r != nullptr;
    rt.os().free_region(r);
    return 0;
  });
  EXPECT_TRUE(allocated);
}

TEST(Rtk, UsesRtkTuningAndKernelEnvironment) {
  RtkStack stack(small_options());
  stack.kernel().set_env("OMP_NUM_THREADS", "4");
  int team = 0;
  bool tuning_is_rtk = false;
  stack.run_app([&](komp::Runtime& rt) {
    team = rt.max_threads();
    tuning_is_rtk = rt.tuning().barrier_step_extra_ns > 0;
    return 0;
  });
  EXPECT_EQ(team, 4);
  EXPECT_TRUE(tuning_is_rtk);
}

TEST(Rtk, PteFlavorSelectable) {
  RtkOptions o = small_options();
  o.use_pte_pthreads = true;
  RtkStack stack(o);
  EXPECT_EQ(stack.pthreads().tuning().flavor, "nautilus-pte");
  RtkStack native(small_options());
  EXPECT_EQ(native.pthreads().tuning().flavor, "nautilus-native");
}

TEST(Rtk, OpenMpUsableFromSecondShellCommand) {
  // RTK's distinctive property: *any* kernel code can use OpenMP, not
  // just the app (§3, Fig. 6 "applies to all code in kernel").
  RtkStack stack(small_options());
  stack.register_app("kernel-worker", [](komp::Runtime& rt) {
    int sum = 0;
    rt.parallel(4, [&](komp::TeamThread& tt) {
      tt.critical("sum", [&] { sum += tt.id(); });
    });
    return sum;
  });
  EXPECT_EQ(stack.run_shell("kernel-worker"), 0 + 1 + 2 + 3);
}

}  // namespace
}  // namespace kop::rtk
