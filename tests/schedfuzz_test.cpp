// The schedule-exploration fuzzer itself: the sweep is clean on main,
// fast enough to run many seeds, catches a deliberately injected
// locking bug with a named racy pair, and replays failures verbatim
// from the (scenario, policy, seed) triple alone.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <regex>

#include "harness/schedfuzz.hpp"

namespace kop {
namespace {

namespace sf = harness::schedfuzz;

TEST(SchedFuzz, SweepOverTwoHundredSeedsIsCleanAndFast) {
  const auto start = std::chrono::steady_clock::now();

  sf::Options opt;
  opt.seeds_per_policy = 9;  // 12 scenarios x 2 policies x 9 = 216 runs
  sf::Report report = sf::sweep(sf::default_scenarios(), opt);

  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(report.runs, 200);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_LT(elapsed.count(), 60) << "sweep must stay fast enough for CI";
}

TEST(SchedFuzz, InjectedUnlockBugIsCaughtWithNamedPair) {
  sf::Options opt;
  opt.seeds_per_policy = 4;
  sf::Report report = sf::sweep({sf::buggy_unlock_scenario()}, opt);

  ASSERT_FALSE(report.ok()) << "the detector must flag the buggy fixture";
  const sf::Failure& f = report.failures.front();
  EXPECT_EQ(f.verdict, sf::Verdict::kRace);
  // The report names the annotated location and both threads.
  EXPECT_NE(f.detail.find("account balance"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("acct0"), std::string::npos) << f.detail;
  EXPECT_NE(f.detail.find("acct1"), std::string::npos) << f.detail;
  // And the failure carries a complete replay line.
  EXPECT_NE(f.replay().find("--scenario=buggy-unlock"), std::string::npos);
  EXPECT_NE(f.replay().find("--sched-seed="), std::string::npos);
}

TEST(SchedFuzz, FailingSeedReplaysVerbatim) {
  sf::Options opt;
  opt.seeds_per_policy = 2;
  sf::Report report = sf::sweep({sf::buggy_unlock_scenario()}, opt);
  ASSERT_FALSE(report.ok());
  const sf::Failure& first = report.failures.front();

  // Re-running the exact (scenario, policy, seed) reproduces the exact
  // verdict and report text.  Only the raced variable's heap address
  // differs between processes, so normalize it away.
  const auto strip_addr = [](const std::string& s) {
    return std::regex_replace(s, std::regex("0x[0-9a-f]+"), "ADDR");
  };
  sf::Failure again =
      sf::run_one(sf::buggy_unlock_scenario(), first.sched);
  EXPECT_EQ(again.verdict, first.verdict);
  EXPECT_EQ(strip_addr(again.detail), strip_addr(first.detail));
}

TEST(SchedFuzz, RunsAreDeterministicPerSeed) {
  auto scenarios = sf::default_scenarios();
  const sf::Scenario* s = sf::find_scenario(scenarios, "komp-tasking");
  ASSERT_NE(s, nullptr);
  sim::SchedConfig sched;
  sched.policy = sim::SchedPolicy::kPct;
  sched.seed = 1234;
  sf::Failure a = sf::run_one(*s, sched);
  sf::Failure b = sf::run_one(*s, sched);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.detail, b.detail);
}

TEST(SchedFuzz, PinnedRegressionSeedsStayClean) {
  // The list checked into tests/ pins seeds from past fuzzing sessions;
  // replay must stay clean on main.
  sf::Report report = sf::replay_regressions(sf::default_scenarios(),
                                             SCHEDFUZZ_REGRESSION_FILE);
  EXPECT_GT(report.runs, 0) << "regression list must not be empty";
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SchedFuzz, RegressionListRejectsUnknownScenarioLoudly) {
  const std::string path = ::testing::TempDir() + "/schedfuzz_unknown.txt";
  {
    std::ofstream out(path);
    out << "# pinned by a previous hunt\n";
    out << "no-such-scenario random 7\n";
  }
  sf::Report report =
      sf::replay_regressions(sf::default_scenarios(), path);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].detail.find("unknown scenario"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SchedFuzz, RegressionListRejectsBadPolicy) {
  const std::string path = ::testing::TempDir() + "/schedfuzz_badpol.txt";
  {
    std::ofstream out(path);
    out << "komp-barrier roundrobin 3\n";
  }
  EXPECT_THROW(sf::load_regressions(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SchedFuzz, FifoPolicyAlsoCatchesTheInjectedBug) {
  // The buggy fixture races even under the legacy FIFO schedule: the
  // happens-before analysis does not depend on lucky interleavings.
  sim::SchedConfig fifo;  // defaults: kFifo, seed 0
  sf::Failure f = sf::run_one(sf::buggy_unlock_scenario(), fifo);
  EXPECT_EQ(f.verdict, sf::Verdict::kRace) << f.detail;
}

TEST(SchedFuzz, RaceDetectionCanBeDisabled) {
  // Without the detector there is no race verdict: the bug can only
  // surface as a wrong answer when the schedule happens to break the
  // sum (the happens-before analysis, by contrast, flags every run).
  sf::Failure f = sf::run_one(sf::buggy_unlock_scenario(), sim::SchedConfig{},
                              /*racecheck=*/false);
  EXPECT_NE(f.verdict, sf::Verdict::kRace);
}

}  // namespace
}  // namespace kop
