// Sharded sweep execution: the hash-mod-N partition must be an exact
// cover, the --shard-list manifest must name every point's cache entry,
// and the full distributed workflow -- N sharded runs into separate
// cache directories, kop_merge union, unsharded replay -- must
// reproduce the unsharded figure byte-identically without simulating a
// single point again.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/jobs/cache.hpp"
#include "harness/jobs/merge.hpp"
#include "harness/jobs/runner.hpp"
#include "harness/jobs/shard.hpp"

namespace {

namespace fs = std::filesystem;
using kop::core::PathKind;
using kop::harness::MetricsSink;
namespace jobs = kop::harness::jobs;

std::vector<jobs::PointSpec> reduced_points() {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(3);
  auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1, 4}, suite);
  kop::epcc::EpccConfig cfg;
  cfg.outer_reps = 2;
  cfg.inner_iters = 4;
  cfg.sched_iters_per_thread = 16;
  cfg.tasks_per_thread = 4;
  cfg.tree_depth = 4;
  const auto epcc = kop::harness::enumerate_epcc_figure(
      "8xeon", 8, {PathKind::kLinuxOmp, PathKind::kRtk, PathKind::kPik}, cfg);
  points.insert(points.end(), epcc.begin(), epcc.end());
  return points;
}

TEST(ShardParse, AcceptsValidForms) {
  jobs::ShardSpec s;
  std::string err;
  ASSERT_TRUE(jobs::parse_shard("1/3", &s, &err)) << err;
  EXPECT_EQ(s.index, 0);
  EXPECT_EQ(s.count, 3);
  EXPECT_TRUE(s.enabled());
  EXPECT_EQ(s.label(), "1/3");

  ASSERT_TRUE(jobs::parse_shard("3/3", &s, &err)) << err;
  EXPECT_EQ(s.index, 2);

  ASSERT_TRUE(jobs::parse_shard("1/1", &s, &err)) << err;
  EXPECT_FALSE(s.enabled());
}

TEST(ShardParse, RejectsMalformedForms) {
  jobs::ShardSpec s;
  std::string err;
  for (const char* bad :
       {"0/3", "4/3", "-1/3", "1/0", "1/-2", "a/b", "2", "2/", "/3", "",
        "1/3x", "1 / 3"}) {
    EXPECT_FALSE(jobs::parse_shard(bad, &s, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(ShardPartition, ExactCoverForSeveralWidths) {
  const auto points = reduced_points();
  ASSERT_GT(points.size(), 8u);
  for (int n : {1, 2, 3, 5, 7}) {
    std::set<std::size_t> covered;
    std::size_t total = 0;
    for (int k = 0; k < n; ++k) {
      jobs::ShardSpec shard;
      shard.index = k;
      shard.count = n;
      const auto idx = jobs::shard_indices(points, shard);
      total += idx.size();
      for (std::size_t i : idx) {
        // Disjoint: no index appears in two shards.
        EXPECT_TRUE(covered.insert(i).second)
            << "point " << i << " in two shards at N=" << n;
        EXPECT_EQ(jobs::shard_of(points[i], n), k);
      }
    }
    // Complete: every index appears in some shard.
    EXPECT_EQ(total, points.size()) << "N=" << n;
    EXPECT_EQ(covered.size(), points.size()) << "N=" << n;
  }
}

TEST(ShardPartition, AssignmentDependsOnlyOnContent) {
  const auto points = reduced_points();
  // Re-enumerating (fresh vector, same content) reproduces the
  // assignment -- the property that lets N machines agree without
  // coordination.
  const auto again = reduced_points();
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(jobs::shard_of(points[i], 5), jobs::shard_of(again[i], 5));
  }
}

TEST(ShardList, ManifestNamesEveryPointAndEntry) {
  const auto points = reduced_points();
  jobs::ShardSpec shard;
  shard.count = 3;
  const std::string text = jobs::shard_list_text(points, shard);

  EXPECT_NE(text.find("# kop-shard-list v1"), std::string::npos);
  EXPECT_NE(text.find("points=" + std::to_string(points.size())),
            std::string::npos);
  EXPECT_NE(
      text.find("fingerprint=" +
                jobs::hex16(jobs::cost_model_fingerprint())),
      std::string::npos);
  for (const auto& p : points) {
    EXPECT_NE(text.find("point=" + jobs::hex16(p.content_hash())),
              std::string::npos)
        << p.label();
    EXPECT_NE(text.find("entry=kop-" + jobs::hex16(jobs::ResultCache::key(p)) +
                        ".json"),
              std::string::npos)
        << p.label();
  }
}

class ShardWorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest -j runs each case as its own process; a fixed directory
    // name would collide across concurrently-running cases.
    root_ = fs::temp_directory_path() /
            ("kop_shard_workflow_" + std::to_string(getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string dir(const std::string& name) {
    const fs::path p = root_ / name;
    return p.string();
  }

  fs::path root_;
};

TEST_F(ShardWorkflowTest, ThreeShardsMergeAndReplayByteIdentically) {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(2);
  const std::vector<PathKind> paths = {PathKind::kRtk};
  const std::vector<int> scales = {1, 4};
  const auto points =
      kop::harness::enumerate_nas_normalized("phi", paths, scales, suite);

  // The reference rendering: unsharded, no cache.
  MetricsSink ref_sink("shard_workflow");
  const std::string reference = kop::harness::print_nas_normalized(
      "Figure 9 (reduced)", "phi", paths, scales, suite, &ref_sink, {});

  // Worker K of 3 runs with --shard K/3 --cache-dir shardK.
  const int kShards = 3;
  for (int k = 0; k < kShards; ++k) {
    jobs::JobOptions jopts;
    jopts.shard.index = k;
    jopts.shard.count = kShards;
    jopts.cache_dir = dir("shard" + std::to_string(k));
    MetricsSink sink("shard_workflow_shard");
    const std::string out = kop::harness::print_nas_normalized(
        "Figure 9 (reduced)", "phi", paths, scales, suite, &sink, jopts);
    // Shard mode never prints the figure table (it can't -- the table
    // needs every shard's results).
    EXPECT_EQ(out.find("geomean"), std::string::npos);
    EXPECT_NE(out.find("[shard " + std::to_string(k + 1) + "/3]"),
              std::string::npos);
  }

  // Merge the shard caches, checking coverage against the manifest.
  const std::string manifest_path = dir("manifest.txt");
  {
    jobs::ShardSpec shard;
    shard.count = kShards;
    std::ofstream out(manifest_path);
    out << jobs::shard_list_text(points, shard);
  }
  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.expect_path = manifest_path;
  for (int k = 0; k < kShards; ++k)
    mopts.sources.push_back(dir("shard" + std::to_string(k)));
  const auto report = jobs::merge_caches(mopts);
  EXPECT_TRUE(report.ok()) << report.text();
  EXPECT_EQ(report.merged, points.size());
  EXPECT_EQ(report.expected, points.size());
  EXPECT_TRUE(report.missing.empty());

  // The unsharded replay hits the merged cache for 100% of points and
  // renders byte-identically.
  jobs::JobOptions warm;
  warm.cache_dir = dir("merged");
  MetricsSink warm_sink("shard_workflow");
  const std::string replay = kop::harness::print_nas_normalized(
      "Figure 9 (reduced)", "phi", paths, scales, suite, &warm_sink, warm);
  EXPECT_EQ(replay, reference);
  EXPECT_EQ(warm_sink.to_json(), ref_sink.to_json());

  jobs::JobRunner runner(warm);
  const auto results = runner.run(points);
  jobs::require_ok(points, results);
  EXPECT_EQ(runner.stats().executed, 0u) << "replay re-simulated points";
  EXPECT_EQ(runner.stats().cache_hits, points.size());
}

TEST_F(ShardWorkflowTest, MergeToleratesEmptyAndZeroPointShards) {
  // More shards than points: the hash-mod-N partition legitimately
  // hands some workers nothing to do.  Their (empty) cache directories
  // must merge cleanly and the manifest must still come out covered.
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  const auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1, 4}, suite);
  const int kShards = 5;
  ASSERT_LT(points.size(), static_cast<std::size_t>(kShards));

  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  int zero_point_shards = 0;
  for (int k = 0; k < kShards; ++k) {
    jobs::ShardSpec shard;
    shard.index = k;
    shard.count = kShards;
    const auto idx = jobs::shard_indices(points, shard);
    std::vector<jobs::PointSpec> mine;
    for (std::size_t i : idx) mine.push_back(points[i]);
    if (mine.empty()) ++zero_point_shards;

    jobs::JobOptions jopts;
    jopts.cache_dir = dir("shard" + std::to_string(k));
    jobs::JobRunner runner(jopts);
    jobs::require_ok(mine, runner.run(mine));
    // Even a worker with nothing claimed leaves a directory behind.
    ASSERT_TRUE(fs::is_directory(jopts.cache_dir));
    mopts.sources.push_back(jopts.cache_dir);
  }
  ASSERT_GT(zero_point_shards, 0) << "partition left no shard empty";

  const std::string manifest_path = dir("manifest.txt");
  {
    jobs::ShardSpec shard;
    shard.count = kShards;
    std::ofstream out(manifest_path);
    out << jobs::shard_list_text(points, shard);
  }
  mopts.expect_path = manifest_path;
  const auto report = jobs::merge_caches(mopts);
  EXPECT_TRUE(report.ok()) << report.text();
  EXPECT_EQ(report.merged, points.size());
  EXPECT_EQ(report.expected, points.size());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_EQ(report.scanned, points.size());

  // A *nonexistent* source is a setup error, not an empty shard.
  jobs::MergeOptions bad = mopts;
  bad.sources.push_back(dir("never-created"));
  EXPECT_THROW(jobs::merge_caches(bad), std::runtime_error);
}

TEST_F(ShardWorkflowTest, MergeFailsLoudlyWhenManifestEntriesAreMissing) {
  // One shard never ran: the merge must name the uncovered entries and
  // refuse to call itself OK, rather than hand back a partial sweep.
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  const auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1, 4}, suite);
  ASSERT_GE(points.size(), 2u);
  const std::vector<jobs::PointSpec> partial(points.begin(),
                                             points.end() - 1);
  jobs::JobOptions jopts;
  jopts.cache_dir = dir("partial");
  jobs::JobRunner runner(jopts);
  jobs::require_ok(partial, runner.run(partial));

  const std::string manifest_path = dir("manifest.txt");
  {
    std::ofstream out(manifest_path);
    out << jobs::shard_list_text(points, jobs::ShardSpec{});
  }
  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.sources = {dir("partial")};
  mopts.expect_path = manifest_path;
  const auto report = jobs::merge_caches(mopts);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing.front(),
            "kop-" + jobs::hex16(jobs::ResultCache::key(points.back())) +
                ".json");
  EXPECT_NE(report.text().find("missing"), std::string::npos);
}

TEST_F(ShardWorkflowTest, IdenticalDuplicatesAcrossShardsAreSkipped) {
  // Overlapping shard runs (same point simulated by two workers) are
  // fine exactly when the bytes agree -- determinism guarantees they
  // do, and the merge records the overlap instead of failing.
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  const auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1}, suite);
  jobs::JobOptions jopts;
  jopts.cache_dir = dir("a");
  jobs::JobRunner runner(jopts);
  jobs::require_ok(points, runner.run(points));
  fs::create_directories(dir("b"));
  for (const auto& e : fs::directory_iterator(dir("a")))
    fs::copy_file(e.path(), fs::path(dir("b")) / e.path().filename());

  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.sources = {dir("a"), dir("b")};
  const auto report = jobs::merge_caches(mopts);
  EXPECT_TRUE(report.ok()) << report.text();
  EXPECT_EQ(report.merged, points.size());
  EXPECT_EQ(report.identical_duplicates, points.size());
}

TEST_F(ShardWorkflowTest, MergeRejectsCorruptAndForeignEntries) {
  // One good shard...
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  const auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1}, suite);
  jobs::JobOptions jopts;
  jopts.cache_dir = dir("good");
  jobs::JobRunner runner(jopts);
  jobs::require_ok(points, runner.run(points));

  // ...and one shard of junk: a file that is not JSON, and a real entry
  // renamed to a name its identity does not hash to.
  fs::create_directories(dir("bad"));
  std::ofstream(dir("bad") + "/kop-0123456789abcdef.json") << "not json";
  std::string first_entry;
  for (const auto& e : fs::directory_iterator(dir("good"))) {
    first_entry = e.path().string();
    break;
  }
  ASSERT_FALSE(first_entry.empty());
  fs::copy_file(first_entry, dir("bad") + "/kop-00000000deadbeef.json");

  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.sources = {dir("good"), dir("bad")};
  const auto report = jobs::merge_caches(mopts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.rejected.size(), 2u) << report.text();
  EXPECT_EQ(report.merged, points.size());
}

TEST_F(ShardWorkflowTest, MergeDetectsDivergentDuplicates) {
  auto suite = kop::harness::scale_suite(kop::nas::paper_suite(), 0.25, 2);
  suite.resize(1);
  const auto points = kop::harness::enumerate_nas_normalized(
      "phi", {PathKind::kRtk}, {1}, suite);
  jobs::JobOptions jopts;
  jopts.cache_dir = dir("a");
  jobs::JobRunner runner(jopts);
  jobs::require_ok(points, runner.run(points));

  // Same entries in a second source, one of them with flipped bytes --
  // two simulations of "the same" point that disagreed.
  fs::create_directories(dir("b"));
  bool tampered = false;
  for (const auto& e : fs::directory_iterator(dir("a"))) {
    const auto destp = fs::path(dir("b")) / e.path().filename();
    fs::copy_file(e.path(), destp);
    if (!tampered) {
      std::ifstream in(destp);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      in.close();
      const auto pos = text.find("\"timed_seconds\":");
      ASSERT_NE(pos, std::string::npos);
      text.insert(pos + 16, "9");
      std::ofstream(destp, std::ios::trunc) << text;
      tampered = true;
    }
  }
  ASSERT_TRUE(tampered);

  jobs::MergeOptions mopts;
  mopts.dest = dir("merged");
  mopts.sources = {dir("a"), dir("b")};
  const auto report = jobs::merge_caches(mopts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.divergent.size(), 1u) << report.text();
  EXPECT_EQ(report.identical_duplicates, points.size() - 1);
}

}  // namespace
