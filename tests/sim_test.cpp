// Unit tests for the discrete-event engine, fibers, RNG and stats.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace kop::sim {
namespace {

TEST(Fiber, RunsToCompletion) {
  int state = 0;
  Fiber f([&] { state = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, PropagatesExceptionToResumer) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, NestedFibersRestoreCurrent) {
  Fiber inner([] { EXPECT_NE(Fiber::current(), nullptr); });
  Fiber outer([&] {
    Fiber* self = Fiber::current();
    inner.resume();
    EXPECT_EQ(Fiber::current(), self);
  });
  outer.resume();
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine eng;
  Time seen = -1;
  auto* t = eng.spawn("t", [&] {
    eng.sleep_for(1500);
    seen = eng.now();
  });
  eng.wake(t);
  eng.run();
  EXPECT_EQ(seen, 1500);
}

TEST(Engine, EventsFireInTimeThenFifoOrder) {
  Engine eng;
  std::vector<int> order;
  eng.post_at(100, [&] { order.push_back(2); });
  eng.post_at(50, [&] { order.push_back(1); });
  eng.post_at(100, [&] { order.push_back(3); });  // same time: FIFO
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, BlockAndWake) {
  Engine eng;
  bool done = false;
  auto* sleeper = eng.spawn("sleeper", [&] {
    eng.block();
    done = true;
  });
  eng.wake(sleeper);  // start it
  eng.post_at(700, [&] { eng.wake(sleeper); });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.now(), 700);
}

TEST(Engine, StaleWakeTokenIsIgnored) {
  Engine eng;
  int wakeups = 0;
  auto* t = eng.spawn("t", [&] {
    // First block: woken by the explicit wake at t=10, while a stale
    // timeout for the same block sits at t=100.
    WakeToken tok = eng.arm_wake_token();
    eng.wake_token_at(tok, 100);
    eng.block();
    ++wakeups;
    // Second block: only the wake at t=200 should resume us; the
    // t=100 token from the first block must not.
    eng.block();
    ++wakeups;
  });
  eng.wake(t);
  eng.post_at(10, [&] { eng.wake(t); });
  eng.post_at(200, [&] { eng.wake(t); });
  eng.run();
  EXPECT_EQ(wakeups, 2);
  EXPECT_EQ(eng.now(), 200);
}

TEST(Engine, DeadlockDetectionNamesThread) {
  Engine eng;
  auto* t = eng.spawn("stuck-thread", [&] { eng.block(); });
  eng.wake(t);
  try {
    eng.run();
    FAIL() << "expected SimDeadlock";
  } catch (const SimDeadlock& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-thread"), std::string::npos);
  }
}

TEST(Engine, ManyThreadsInterleaveDeterministically) {
  auto run_once = [] {
    Engine eng(123);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      auto* t = eng.spawn("t" + std::to_string(i), [&, i] {
        eng.sleep_for(100 * (10 - i));
        order.push_back(i);
      });
      eng.wake(t);
    }
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
  auto order = run_once();
  EXPECT_EQ(order.front(), 9);  // shortest sleep finishes first
  EXPECT_EQ(order.back(), 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(2);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, LognormalMeanCv) {
  Rng r(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_mean_cv(100.0, 0.5);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.5);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, TrimmedMeanRejectsOutlier) {
  Stats s;
  for (int i = 0; i < 50; ++i) s.add(10.0 + 0.01 * i);
  s.add(10000.0);
  EXPECT_LT(s.trimmed_mean(3.0), 12.0);
}

}  // namespace
}  // namespace kop::sim

// Appended coverage: engine run-loop statistics.
namespace kop::sim {
namespace {

TEST(Engine, StatsCountEventsThreadsAndStaleWakes) {
  Engine eng;
  auto* t = eng.spawn("t", [&] {
    WakeToken tok = eng.arm_wake_token();
    eng.wake_token_at(tok, 100);  // will be made stale by the wake at 10
    eng.block();
    // Stay alive past t=100 so the stale token fires against a live
    // thread (wakes for finished threads are dropped earlier).
    eng.sleep_for(200);
  });
  eng.wake(t);
  eng.post_at(10, [&] { eng.wake(t); });
  eng.run();
  const auto& s = eng.stats();
  EXPECT_EQ(s.threads_spawned, 1u);
  EXPECT_EQ(s.stale_wakes, 1u);       // the t=100 token
  EXPECT_GE(s.events_dispatched, 4u); // start, post, wake, sleep-wake, stale
  EXPECT_GE(s.peak_queue_depth, 1u);
}

}  // namespace
}  // namespace kop::sim
