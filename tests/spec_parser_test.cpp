// Tests for the workload-description text format.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "nas/exec.hpp"
#include "nas/spec_parser.hpp"

namespace kop::nas {
namespace {

constexpr const char* kWave = R"(
# a custom wave-propagation workload
benchmark WAVE class B
timesteps 8
region field 512M
static_bytes 512M
serial_per_step 2ms

loop stencil
  region field
  trip 2048
  per_iter 2ms
  mem_fraction 0.55
  accesses_per_ns 0.004
  pattern streaming
end

loop gather
  region field
  trip 1024
  per_iter 1.5us
  mem_fraction 0.6
  bytes_per_iter 250K
  pattern random
  skew 0.5
  privatized_object true
  schedule dynamic 4
end
)";

TEST(SpecParser, ParsesFullDescription) {
  const BenchmarkSpec spec = parse_spec(kWave);
  EXPECT_EQ(spec.name, "WAVE");
  EXPECT_EQ(spec.clazz, 'B');
  EXPECT_EQ(spec.timesteps, 8);
  ASSERT_EQ(spec.regions.size(), 1u);
  EXPECT_EQ(spec.regions[0].bytes, 512ULL << 20);
  EXPECT_EQ(spec.static_bytes, 512ULL << 20);
  EXPECT_DOUBLE_EQ(spec.serial_ns_per_step, 2e6);
  ASSERT_EQ(spec.loops.size(), 2u);

  const LoopSpec& stencil = spec.loops[0];
  EXPECT_EQ(stencil.trip, 2048);
  EXPECT_DOUBLE_EQ(stencil.per_iter_ns, 2e6);
  // accesses_per_ns 0.004 * 2e6 ns * 64 B.
  EXPECT_EQ(stencil.bytes_per_iter, 512000u);
  EXPECT_EQ(stencil.pattern, hw::AccessPattern::kStreaming);
  EXPECT_FALSE(stencil.needs_object_privatization);

  const LoopSpec& gather = spec.loops[1];
  EXPECT_DOUBLE_EQ(gather.per_iter_ns, 1500.0);
  EXPECT_EQ(gather.bytes_per_iter, 250u << 10);
  EXPECT_EQ(gather.pattern, hw::AccessPattern::kRandom);
  EXPECT_TRUE(gather.needs_object_privatization);
  EXPECT_EQ(gather.schedule, komp::Schedule::kDynamic);
  EXPECT_EQ(gather.chunk, 4);
  EXPECT_DOUBLE_EQ(gather.skew, 0.5);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_spec("benchmark X class C\nregion r 1M\nloop l\n  trip banana\nend\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("trip"), std::string::npos);
  }
}

TEST(SpecParser, RejectsStructuralMistakes) {
  EXPECT_THROW(parse_spec("timesteps 2\n"), SpecParseError);  // no benchmark
  EXPECT_THROW(parse_spec("benchmark X\nregion r 1M\n"), SpecParseError);  // no loops
  EXPECT_THROW(parse_spec("benchmark X\nloop l\n  trip 5\n"), SpecParseError);  // unterminated
  EXPECT_THROW(
      parse_spec("benchmark X\nregion r 1M\nloop l\n  region other\n  per_iter 1us\nend\n"),
      SpecParseError);  // unknown region
  EXPECT_THROW(parse_spec("benchmark X\nregion r 1M\nwibble 3\n"),
               SpecParseError);  // unknown directive
  EXPECT_THROW(
      parse_spec("benchmark X\nregion r 1M\nloop l\n  region r\n  per_iter 1us\n  pattern diagonal\nend\n"),
      SpecParseError);  // unknown pattern
}

TEST(SpecParser, RoundTripsThroughFormat) {
  const BenchmarkSpec original = parse_spec(kWave);
  const BenchmarkSpec again = parse_spec(format_spec(original));
  EXPECT_EQ(again.name, original.name);
  EXPECT_EQ(again.timesteps, original.timesteps);
  ASSERT_EQ(again.loops.size(), original.loops.size());
  for (std::size_t i = 0; i < original.loops.size(); ++i) {
    EXPECT_EQ(again.loops[i].trip, original.loops[i].trip);
    EXPECT_NEAR(again.loops[i].per_iter_ns, original.loops[i].per_iter_ns, 1e-6);
    EXPECT_EQ(again.loops[i].bytes_per_iter, original.loops[i].bytes_per_iter);
    EXPECT_EQ(again.loops[i].pattern, original.loops[i].pattern);
    EXPECT_EQ(again.loops[i].needs_object_privatization,
              original.loops[i].needs_object_privatization);
    EXPECT_EQ(again.loops[i].chunk, original.loops[i].chunk);
  }
}

TEST(SpecParser, ShippedSpecsRoundTrip) {
  for (const auto& spec : paper_suite()) {
    const BenchmarkSpec again = parse_spec(format_spec(spec));
    EXPECT_EQ(again.name, spec.name);
    EXPECT_EQ(again.loops.size(), spec.loops.size()) << spec.name;
    EXPECT_NEAR(again.base_work_ns(), spec.base_work_ns(),
                spec.base_work_ns() * 1e-9)
        << spec.name;
  }
}

TEST(SpecParser, ParsedSpecRunsEndToEnd) {
  BenchmarkSpec spec = parse_spec(kWave);
  spec.timesteps = 1;
  for (auto& l : spec.loops) l.per_iter_ns *= 0.01;
  core::StackConfig cfg;
  cfg.path = core::PathKind::kRtk;
  cfg.num_threads = 8;
  cfg.app_static_bytes = spec.static_bytes;
  auto stack = core::Stack::create(cfg);
  double seconds = 0;
  stack->run_omp_app([&](komp::Runtime& rt) {
    seconds = run_openmp(rt, spec).timed_seconds;
    return 0;
  });
  EXPECT_GT(seconds, 0.0);
}

}  // namespace
}  // namespace kop::nas
