// Telemetry subsystem tests: the counter fabric, the JSON
// writer/parser pair, the kop-metrics schema validator, and the
// integration test behind the paper's §6.2 explanation -- the
// Linux-vs-kernel performance gap must be readable from the event
// counters alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "harness/metrics.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace {

using kop::telemetry::Counter;
using kop::telemetry::CounterFabric;
using kop::telemetry::JsonValue;
using kop::telemetry::JsonWriter;
using kop::telemetry::parse_json;
using kop::telemetry::validate_metrics_json;

// --- counter fabric --------------------------------------------------

TEST(CounterFabric, AttributesPerCpuAndTotals) {
  CounterFabric f(4);
  f.add_on(0, Counter::kPageFaults, 3);
  f.add_on(2, Counter::kPageFaults, 5);
  f.add_on(2, Counter::kIpis);
  EXPECT_EQ(f.total(Counter::kPageFaults), 8u);
  EXPECT_EQ(f.on_cpu(0, Counter::kPageFaults), 3u);
  EXPECT_EQ(f.on_cpu(1, Counter::kPageFaults), 0u);
  EXPECT_EQ(f.on_cpu(2, Counter::kPageFaults), 5u);
  EXPECT_EQ(f.total(Counter::kIpis), 1u);
}

TEST(CounterFabric, UnattributedEventsOnlyShowInTotals) {
  CounterFabric f(2);
  f.add(Counter::kSyscalls, 7);        // explicit unattributed
  f.add_on(-1, Counter::kSyscalls);    // cpu < 0
  f.add_on(99, Counter::kSyscalls);    // out of range
  EXPECT_EQ(f.total(Counter::kSyscalls), 9u);
  EXPECT_EQ(f.on_cpu(0, Counter::kSyscalls), 0u);
  EXPECT_EQ(f.on_cpu(1, Counter::kSyscalls), 0u);
}

TEST(CounterFabric, SnapshotAndResetRoundTrip) {
  CounterFabric f(2);
  f.add_on(1, Counter::kTaskSteals, 4);
  const auto snap = f.snapshot();
  EXPECT_EQ(snap.total(Counter::kTaskSteals), 4u);
  EXPECT_EQ(snap.on_cpu(1, Counter::kTaskSteals), 4u);
  f.reset();
  EXPECT_EQ(f.total(Counter::kTaskSteals), 0u);
  // The snapshot is an independent copy.
  EXPECT_EQ(snap.total(Counter::kTaskSteals), 4u);
}

TEST(CounterFabric, NamesAreStableSnakeCase) {
  EXPECT_STREQ(kop::telemetry::counter_name(Counter::kPageFaults),
               "page_faults");
  EXPECT_STREQ(kop::telemetry::counter_name(Counter::kTaskSteals),
               "task_steals");
  // Every counter has a distinct, non-empty name.
  std::set<std::string> names;
  for (int c = 0; c < kop::telemetry::kNumCounters; ++c) {
    const char* n = kop::telemetry::counter_name(static_cast<Counter>(c));
    ASSERT_NE(n, nullptr);
    ASSERT_FALSE(std::string(n).empty());
    names.insert(n);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kop::telemetry::kNumCounters));
}

// --- JSON writer / parser -------------------------------------------

TEST(Json, WriterParserRoundTrip) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("he said \"hi\"\n");
  w.key("i").value(std::int64_t{-42});
  w.key("u").value(std::uint64_t{18446744073709551615ULL});
  w.key("d").value(2.5);
  w.key("b").value(true);
  w.key("n").null();
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().key("k").value("v").end_object();
  w.end_object();

  const JsonValue root = parse_json(w.str());
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("s")->string, "he said \"hi\"\n");
  EXPECT_EQ(root.find("i")->number, -42.0);
  EXPECT_EQ(root.find("d")->number, 2.5);
  EXPECT_TRUE(root.find("b")->boolean);
  EXPECT_EQ(root.find("n")->type, JsonValue::Type::kNull);
  ASSERT_EQ(root.find("arr")->array.size(), 2u);
  EXPECT_EQ(root.find("obj")->find("k")->string, "v");
  // Key order is preserved (the schema validator depends on it).
  EXPECT_EQ(root.object[0].first, "s");
  EXPECT_EQ(root.object[6].first, "arr");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), kop::telemetry::JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), kop::telemetry::JsonParseError);
  EXPECT_THROW(parse_json("[1,2] trailing"), kop::telemetry::JsonParseError);
  EXPECT_THROW(parse_json(""), kop::telemetry::JsonParseError);
}

// --- schema validator -----------------------------------------------

kop::harness::RunMetrics sample_run() {
  kop::harness::RunMetrics m;
  m.label = "unit";
  m.machine = "phi";
  m.path = "linux-omp";
  m.threads = 4;
  m.timed_seconds = 1.25;
  m.counters.totals[static_cast<int>(Counter::kPageFaults)] = 12;
  kop::harness::ConstructStat stat;
  stat.count = 3;
  stat.total_us = 6.0;
  stat.mean_us = 2.0;
  m.constructs["parallel"] = stat;
  return m;
}

TEST(MetricsSchema, SinkOutputValidates) {
  kop::harness::MetricsSink sink("telemetry_test");
  sink.add(sample_run());
  const auto violations = validate_metrics_json(sink.to_json());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations[0]);
}

TEST(MetricsSchema, PerCpuSectionValidates) {
  kop::harness::MetricsSink sink("telemetry_test");
  auto m = sample_run();
  m.include_per_cpu = true;
  m.counters.per_cpu.resize(2);
  m.counters.per_cpu[1][static_cast<int>(Counter::kIpis)] = 3;
  sink.add(std::move(m));
  EXPECT_TRUE(validate_metrics_json(sink.to_json()).empty());
}

TEST(MetricsSchema, CatchesViolations) {
  kop::harness::MetricsSink sink("telemetry_test");
  sink.add(sample_run());
  const std::string good = sink.to_json();

  // Wrong schema name.
  {
    std::string bad = good;
    bad.replace(bad.find("kop-metrics"), 11, "not-metrics");
    EXPECT_FALSE(validate_metrics_json(bad).empty());
  }
  // Counter dropped: the "exactly 15, in enum order" rule.
  {
    std::string bad = good;
    const auto pos = bad.find("\"tlb_misses\":0,");
    ASSERT_NE(pos, std::string::npos);
    bad.erase(pos, std::string("\"tlb_misses\":0,").size());
    EXPECT_FALSE(validate_metrics_json(bad).empty());
  }
  // Unknown per-run key.
  {
    std::string bad = good;
    const auto pos = bad.find("\"label\"");
    ASSERT_NE(pos, std::string::npos);
    bad.insert(pos, "\"surprise\":1,");
    EXPECT_FALSE(validate_metrics_json(bad).empty());
  }
  // Negative counter value.
  {
    std::string bad = good;
    const auto pos = bad.find("\"page_faults\":12");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, std::string("\"page_faults\":12").size(),
                "\"page_faults\":-1");
    EXPECT_FALSE(validate_metrics_json(bad).empty());
  }
  // Empty runs array.
  EXPECT_FALSE(validate_metrics_json(
                   "{\"schema\":\"kop-metrics\",\"version\":1,"
                   "\"generator\":\"x\",\"runs\":[]}")
                   .empty());
  // Malformed JSON becomes a violation, not an exception.
  EXPECT_FALSE(validate_metrics_json("{oops").empty());
}

// --- §6.2 integration: the performance story told by counters --------

class Section62Counters : public ::testing::Test {
 protected:
  static kop::telemetry::Snapshot run(kop::core::PathKind path) {
    kop::core::StackConfig cfg;
    cfg.machine = "phi";
    cfg.path = path;
    cfg.num_threads = 4;
    auto spec = kop::harness::scale_suite({kop::nas::by_name("CG")}, 0.2, 2)[0];
    kop::harness::RunMetrics m;
    kop::harness::run_nas(cfg, spec, &m);
    return m.counters;
  }

  static std::uint64_t interrupt_events(const kop::telemetry::Snapshot& s) {
    return s.total(Counter::kTimerTicks) + s.total(Counter::kNoisePreemptions) +
           s.total(Counter::kDeviceInterrupts);
  }
};

// Paper §6.2: the Linux gap is explained by (a) page faults on first
// touch, (b) TLB misses from the 2M/4K mixed layout, (c) OS noise and
// timer interrupts.  The kernel paths (RTK: ported runtime; PIK:
// pristine binary in the kernel) must show *zero* page faults and at
// least 10x fewer interrupt events; RTK's 1G pages additionally cut
// TLB misses >= 10x -- all from the counters alone, with no reference
// to wall-clock results.
TEST_F(Section62Counters, LinuxShowsStructuralOverheadSources) {
  const auto linux_snap = run(kop::core::PathKind::kLinuxOmp);
  EXPECT_GT(linux_snap.total(Counter::kPageFaults), 0u);
  EXPECT_GT(linux_snap.total(Counter::kTlbMisses), 0u);
  EXPECT_GT(linux_snap.total(Counter::kNoisePreemptions), 0u);
  EXPECT_GT(linux_snap.total(Counter::kTimerTicks), 0u);
}

TEST_F(Section62Counters, KernelPathsEliminateFaultsAndQuietTheMachine) {
  const auto linux_snap = run(kop::core::PathKind::kLinuxOmp);
  for (auto path : {kop::core::PathKind::kRtk, kop::core::PathKind::kPik}) {
    const auto kernel_snap = run(path);
    SCOPED_TRACE(kop::core::path_name(path));
    // Boot-time / eager mapping: nothing is demand paged.
    EXPECT_EQ(kernel_snap.total(Counter::kPageFaults), 0u);
    // >= 10x fewer interrupt events (tickless, no OS noise).
    EXPECT_LE(interrupt_events(kernel_snap) * 10,
              interrupt_events(linux_snap));
  }

  // TLB misses separate the two kernel paths.  RTK maps the heap on
  // 1G kernel pages: >= 10x fewer misses than Linux.  PIK runs the
  // pristine binary, which keeps the user-level 2MB-grained layout
  // (see fig10 / pik_os), so its miss count stays at Linux parity --
  // this contrast is itself part of the paper's story (PIK's gains
  // come from faults and noise, not from translation).
  const auto rtk_snap = run(kop::core::PathKind::kRtk);
  EXPECT_LE(rtk_snap.total(Counter::kTlbMisses) * 10,
            linux_snap.total(Counter::kTlbMisses));
  const auto pik_snap = run(kop::core::PathKind::kPik);
  EXPECT_LE(pik_snap.total(Counter::kTlbMisses),
            linux_snap.total(Counter::kTlbMisses));
  EXPECT_GE(pik_snap.total(Counter::kTlbMisses) * 2,
            linux_snap.total(Counter::kTlbMisses));
}

}  // namespace
