// Golden tests for osal::Tracer's Chrome trace-event export: the field
// order (name, ph, pid, tid, ts, dur) is a stable contract -- trace
// viewers and the docs' jq recipes depend on it -- the document must be
// valid JSON, and per-tid timestamps must be monotonic when the trace
// comes from a real run (virtual time never goes backwards on a CPU).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hw/topology.hpp"
#include "linuxmodel/linux_os.hpp"
#include "osal/tracer.hpp"
#include "sim/engine.hpp"
#include "telemetry/json.hpp"

namespace {

using kop::osal::Tracer;
using kop::telemetry::JsonValue;
using kop::telemetry::parse_json;

TEST(Tracer, GoldenExportIsByteStable) {
  Tracer tr;
  tr.enable();
  tr.record("worker-0", 0, 1000, 500);
  tr.record("worker-1", 1, 2500, 1500);

  // The golden string: field order name/ph/pid/tid/ts/dur, timestamps
  // in microseconds.  Any change here is a consumer-visible format
  // break and must bump consumers too.
  EXPECT_EQ(tr.to_chrome_json(),
            "{\"traceEvents\":["
            "{\"name\":\"worker-0\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
            "\"ts\":1,\"dur\":0.5},"
            "{\"name\":\"worker-1\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
            "\"ts\":2.5,\"dur\":1.5}"
            "],\"displayTimeUnit\":\"ms\"}");
}

TEST(Tracer, ExportIsValidJsonWithStableFieldOrder) {
  Tracer tr;
  tr.enable();
  tr.record("a", 0, 0, 10);
  tr.record("b", 2, 1000, 2000);

  const JsonValue root = parse_json(tr.to_chrome_json());
  ASSERT_TRUE(root.is_object());
  ASSERT_EQ(root.object.size(), 2u);
  EXPECT_EQ(root.object[0].first, "traceEvents");
  EXPECT_EQ(root.object[1].first, "displayTimeUnit");
  EXPECT_EQ(root.object[1].second.string, "ms");

  const JsonValue& events = root.object[0].second;
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 2u);
  const char* expect_keys[] = {"name", "ph", "pid", "tid", "ts", "dur"};
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_EQ(e.object.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_EQ(e.object[i].first, expect_keys[i]);
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_EQ(e.find("pid")->number, 1.0);
  }
}

TEST(Tracer, EscapesQuotesAndBackslashes) {
  Tracer tr;
  tr.enable();
  tr.record("odd \"name\" with \\ inside", 0, 0, 1);
  const JsonValue root = parse_json(tr.to_chrome_json());
  const JsonValue& ev = root.find("traceEvents")->array.at(0);
  EXPECT_EQ(ev.find("name")->string, "odd \"name\" with \\ inside");
}

TEST(Tracer, RealRunHasMonotonicTimestamps) {
  kop::sim::Engine engine(7);
  kop::linuxmodel::LinuxOs os(engine, kop::hw::machine_by_name("phi"));
  os.tracer().enable();

  for (int t = 0; t < 4; ++t) {
    os.spawn_thread("worker-" + std::to_string(t), [&os]() {
      for (int i = 0; i < 8; ++i) {
        kop::hw::WorkBlock block;
        block.cpu_ns = 5000;
        os.compute(block, /*data_zone=*/-1);
        os.yield();
      }
    }, t % 2);  // two threads per CPU: contended slices
  }
  engine.run();

  const std::string json = os.tracer().to_chrome_json();
  const JsonValue root = parse_json(json);
  const JsonValue& events = *root.find("traceEvents");
  ASSERT_GE(events.array.size(), 8u);

  // Two invariants a real run guarantees.  (Per-tid slices are NOT
  // disjoint: a slice's ts is taken before the thread occupies the
  // CPU, so it includes queueing delay and may overlap the slice that
  // ran while it waited.)
  //
  // 1. Events append in completion order: end times (ts + dur, the
  //    moment record() ran) never decrease across the document.
  // 2. A thread runs one compute at a time: per-name slices are
  //    sequential and non-overlapping.
  double last_doc_end = 0.0;
  std::map<std::string, double> last_end;  // name -> end of prev slice
  for (const JsonValue& e : events.array) {
    const std::string& name = e.find("name")->string;
    const double ts = e.find("ts")->number;
    const double dur = e.find("dur")->number;
    ASSERT_GE(dur, 0.0);
    const double end = ts + dur;
    EXPECT_GE(end, last_doc_end);
    last_doc_end = end;
    auto it = last_end.find(name);
    if (it != last_end.end())
      EXPECT_GE(ts, it->second) << "thread " << name;
    last_end[name] = end;
  }
}

}  // namespace
