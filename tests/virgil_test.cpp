// Tests for the VIRGIL task runtimes (kernel and user variants) and
// the CountdownLatch join primitive.
#include <gtest/gtest.h>

#include "linuxmodel/linux_os.hpp"
#include "nautilus/kernel.hpp"
#include "virgil/virgil.hpp"

namespace kop::virgil {
namespace {

TEST(Latch, CountsDownAndReleases) {
  sim::Engine eng(1);
  nautilus::NautilusKernel nk(eng, hw::phi());
  bool released = false;
  nk.spawn_thread(
      "main",
      [&] {
        CountdownLatch latch(nk, 3);
        for (int i = 0; i < 3; ++i) {
          nk.spawn_thread(
              "w" + std::to_string(i),
              [&] {
                eng.sleep_for(1000);
                latch.count_down();
              },
              i + 1);
        }
        latch.wait();
        released = true;
        EXPECT_EQ(latch.remaining(), 0);
      },
      0);
  eng.run();
  EXPECT_TRUE(released);
}

TEST(Latch, ZeroCountWaitReturnsImmediately) {
  sim::Engine eng(2);
  nautilus::NautilusKernel nk(eng, hw::phi());
  bool ok = false;
  nk.spawn_thread(
      "main",
      [&] {
        CountdownLatch latch(nk, 0);
        latch.wait();
        ok = true;
      },
      0);
  eng.run();
  EXPECT_TRUE(ok);
}

TEST(Latch, UnderflowThrows) {
  sim::Engine eng(3);
  nautilus::NautilusKernel nk(eng, hw::phi());
  bool threw = false;
  nk.spawn_thread(
      "main",
      [&] {
        CountdownLatch latch(nk, 1);
        latch.count_down();
        try {
          latch.count_down();
        } catch (const std::logic_error&) {
          threw = true;
        }
      },
      0);
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(KernelVirgil, ExecutesViaTaskSystem) {
  sim::Engine eng(4);
  nautilus::NautilusKernel nk(eng, hw::phi());
  int done = 0;
  nk.spawn_thread(
      "main",
      [&] {
        nk.task_system().start(8);
        KernelVirgil vg(nk, 8);
        EXPECT_EQ(vg.width(), 8);
        CountdownLatch latch(nk, 32);
        for (int i = 0; i < 32; ++i) {
          vg.submit([&] {
            nk.compute_ns(5000);
            ++done;
            latch.count_down();
          });
        }
        latch.wait();
        nk.task_system().stop();
      },
      0);
  eng.run();
  EXPECT_EQ(done, 32);
  EXPECT_EQ(nk.task_system().executed(), 32u);
}

TEST(UserVirgil, ExecutesOnWorkerPool) {
  sim::Engine eng(5);
  linuxmodel::LinuxOs os(eng, hw::phi());
  int done = 0;
  os.spawn_thread(
      "main",
      [&] {
        UserVirgil vg(os, 4);
        vg.start();
        EXPECT_EQ(vg.width(), 4);
        CountdownLatch latch(os, 16);
        for (int i = 0; i < 16; ++i) {
          vg.submit([&] {
            os.compute_ns(2000);
            ++done;
            latch.count_down();
          });
        }
        latch.wait();
        vg.stop();
      },
      0);
  eng.run();
  EXPECT_EQ(done, 16);
  EXPECT_EQ(std::string(UserVirgil(os, 1).flavor()), "virgil-user");
}

TEST(UserVirgil, TasksSubmittedFromTasksComplete) {
  sim::Engine eng(6);
  linuxmodel::LinuxOs os(eng, hw::phi());
  int done = 0;
  os.spawn_thread(
      "main",
      [&] {
        UserVirgil vg(os, 4);
        vg.start();
        CountdownLatch latch(os, 8);
        for (int i = 0; i < 4; ++i) {
          vg.submit([&] {
            latch.count_down();
            vg.submit([&] {
              ++done;
              latch.count_down();
            });
          });
        }
        latch.wait();
        vg.stop();
      },
      0);
  eng.run();
  EXPECT_EQ(done, 4);
}

TEST(Virgil, KernelDispatchCheaperThanUser) {
  // The CCK premise: kernel task dispatch (SoftIRQ veneer) beats the
  // user-level pool with futex wakes for fine-grained tasks.
  auto measure_kernel = [] {
    sim::Engine eng(7);
    nautilus::NautilusKernel nk(eng, hw::phi());
    sim::Time elapsed = 0;
    nk.spawn_thread(
        "main",
        [&] {
          nk.task_system().start(8);
          KernelVirgil vg(nk, 8);
          const sim::Time t0 = eng.now();
          CountdownLatch latch(nk, 512);
          for (int i = 0; i < 512; ++i)
            vg.submit([&] {
              nk.compute_ns(1000);
              latch.count_down();
            });
          latch.wait();
          elapsed = eng.now() - t0;
          nk.task_system().stop();
        },
        0);
    eng.run();
    return elapsed;
  };
  auto measure_user = [] {
    sim::Engine eng(7);
    linuxmodel::LinuxOs os(eng, hw::phi());
    sim::Time elapsed = 0;
    os.spawn_thread(
        "main",
        [&] {
          UserVirgil vg(os, 8);
          vg.start();
          const sim::Time t0 = eng.now();
          CountdownLatch latch(os, 512);
          for (int i = 0; i < 512; ++i)
            vg.submit([&] {
              os.compute_ns(1000);
              latch.count_down();
            });
          latch.wait();
          elapsed = eng.now() - t0;
          vg.stop();
        },
        0);
    eng.run();
    return elapsed;
  };
  EXPECT_LT(measure_kernel(), measure_user());
}

}  // namespace
}  // namespace kop::virgil
