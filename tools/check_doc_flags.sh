#!/usr/bin/env bash
# Doc drift gate: every --flag a documentation code block passes to one
# of this repo's binaries must be accepted by that binary, as judged by
# its usage text.  Docs rot one renamed flag at a time; this keeps every
# worked example in the handbook runnable.
#
#   tools/check_doc_flags.sh [build-dir] [doc.md ...]
#
# Mechanics: fenced code blocks are extracted, backslash continuations
# are joined, and each --flag is attributed to the nearest preceding
# token whose basename names a built binary (build/examples or
# build/bench), resetting at pipes and command separators.  "=value"
# suffixes are stripped.  Usage text comes from running the binary with
# --help (every CLI here prints usage and exits nonzero on it).
set -u

build=${1:-build}
if [ $# -gt 0 ]; then shift; fi
docs=("$@")
if [ ${#docs[@]} -eq 0 ]; then
  docs=(README.md docs/COORDINATOR.md docs/PIPELINE.md docs/TUTORIAL.md)
fi

declare -A bin_path usage_cache
for d in examples bench; do
  [ -d "$build/$d" ] || continue
  for f in "$build/$d"/*; do
    if [ -f "$f" ] && [ -x "$f" ]; then
      bin_path[$(basename "$f")]=$f
    fi
  done
done
if [ ${#bin_path[@]} -eq 0 ]; then
  echo "check_doc_flags: no binaries under $build/{examples,bench}" \
       "-- build first" >&2
  exit 2
fi

usage_of() {
  local name=$1
  if [ -z "${usage_cache[$name]:-}" ]; then
    usage_cache[$name]=$("${bin_path[$name]}" --help 2>&1 || true)
  fi
  printf '%s' "${usage_cache[$name]}"
}

fail=0
for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "check_doc_flags: missing doc $doc" >&2
    fail=1
    continue
  fi
  # Fenced blocks only, continuations joined into one logical line.
  joined=$(awk '/^[[:space:]]*```/ { fenced = !fenced; next } fenced' \
             "$doc" | sed -e ':a' -e '/\\$/{N; s/\\\n//; ba}')
  while IFS= read -r line; do
    bin=""
    for tok in $line; do
      case "$tok" in
        '|' | '||' | '&&' | ';') bin="" ; continue ;;
      esac
      base=${tok##*/}
      if [ -n "$base" ] && [ -n "${bin_path[$base]:-}" ]; then
        bin=$base
        continue
      fi
      case "$tok" in
        --*)
          [ -n "$bin" ] || continue
          flag=${tok%%=*}
          # Word-boundary match against the usage text: "[--bench ...]"
          # and "--timeout-ms T | --timeout S" must both resolve right.
          if ! usage_of "$bin" | grep -Eq -- "(^|[^-[:alnum:]])${flag}([^-[:alnum:]]|$)"; then
            echo "$doc: $bin does not accept $flag" >&2
            echo "    in: $line" >&2
            fail=1
          fi
          ;;
      esac
    done
  done <<< "$joined"
done

if [ "$fail" -ne 0 ]; then
  echo "check_doc_flags: documentation uses flags the binaries reject" >&2
  exit 1
fi
echo "check_doc_flags: all documented flags accepted"
